// Tests for the IOTSIM_CHECK invariant framework (src/check) and for the
// invariants instrumented across the stack. Handler/formatting mechanics
// are testable in every build; tests that a specific invariant *fires*
// require the checks to be compiled in (Debug or -DIOTSIM_CHECKS=ON) and
// are guarded by IOTSIM_CHECKS_ENABLED.
#include "check/check.h"

#include <gtest/gtest.h>

#include <string>

#include "energy/battery.h"
#include "energy/energy_accountant.h"
#include "energy/power_model.h"
#include "energy/power_state_machine.h"
#include "hw/mcu.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace iotsim {
namespace {

using check::CheckFailure;
using check::FailureInfo;
using check::ScopedFailureHandler;

TEST(CheckFormat, EmptyAndPrintf) {
  EXPECT_EQ(check::format(), "");
  EXPECT_EQ(check::format("plain"), "plain");
  EXPECT_EQ(check::format("x=%d y=%s", 7, "abc"), "x=7 y=abc");
  EXPECT_EQ(check::format("%.3f", 1.5), "1.500");
}

TEST(CheckFormat, LongMessagesAreNotTruncated) {
  const std::string big(500, 'q');
  EXPECT_EQ(check::format("%s", big.c_str()), big);
}

TEST(CheckHandler, FailRoutesToInstalledHandler) {
  ScopedFailureHandler guard{check::throwing_handler};
  try {
    check::fail("some_file.cpp", 42, "a < b", "t=1.5s component 'cpu'");
    FAIL() << "fail() returned";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a < b"), std::string::npos) << what;
    EXPECT_NE(what.find("some_file.cpp:42"), std::string::npos) << what;
    EXPECT_NE(what.find("t=1.5s component 'cpu'"), std::string::npos) << what;
  }
}

TEST(CheckHandler, ScopedHandlerRestoresPrevious) {
  static int calls = 0;
  const auto counting = [](const FailureInfo&) {
    ++calls;
    throw CheckFailure{FailureInfo{"f", 1, "c", ""}};
  };
  ScopedFailureHandler outer{check::throwing_handler};
  {
    ScopedFailureHandler inner{counting};
    EXPECT_THROW(check::fail("f", 1, "inner", ""), CheckFailure);
    EXPECT_EQ(calls, 1);
  }
  // Restored: the counting handler must not run again.
  EXPECT_THROW(check::fail("f", 2, "outer", ""), CheckFailure);
  EXPECT_EQ(calls, 1);
}

TEST(CheckRepr, KnowsSimTimeAndArithmetic) {
  EXPECT_EQ(check::detail::repr(42), "42");
  EXPECT_EQ(check::detail::repr(sim::SimTime::origin()), sim::SimTime::origin().to_string());
  EXPECT_EQ(check::detail::repr("text"), "text");
}

#if IOTSIM_CHECKS_ENABLED

TEST(CheckMacros, PassingChecksAreSilent) {
  ScopedFailureHandler guard{check::throwing_handler};
  IOTSIM_CHECK(1 + 1 == 2, "never shown");
  IOTSIM_CHECK_LE(1, 2, "never shown");
  IOTSIM_CHECK_EQ(3, 3);
  SUCCEED();
}

TEST(CheckMacros, FailureCarriesConditionAndContext) {
  ScopedFailureHandler guard{check::throwing_handler};
  const int got = 7;
  try {
    IOTSIM_CHECK(got == 8, "hub '%s' at t=%s", "hub3", "1.25s");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("got == 8"), std::string::npos) << what;
    EXPECT_NE(what.find("hub 'hub3' at t=1.25s"), std::string::npos) << what;
  }
}

TEST(CheckMacros, CheckOpReportsBothValues) {
  ScopedFailureHandler guard{check::throwing_handler};
  try {
    IOTSIM_CHECK_LT(9, 4, "budget exceeded");
    FAIL() << "check did not fire";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs=9"), std::string::npos) << what;
    EXPECT_NE(what.find("rhs=4"), std::string::npos) << what;
    EXPECT_NE(what.find("budget exceeded"), std::string::npos) << what;
  }
}

TEST(CheckMacros, OperandsEvaluateOnce) {
  ScopedFailureHandler guard{check::throwing_handler};
  int evals = 0;
  const auto bump = [&] { return ++evals; };
  IOTSIM_CHECK_GE(bump(), 1, "side effect");
  EXPECT_EQ(evals, 1);
}

// --- instrumented invariants -------------------------------------------

TEST(Invariants, EventQueuePopOnEmptyFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  sim::EventQueue q;
  EXPECT_THROW((void)q.pop(), CheckFailure);
}

TEST(Invariants, EventQueueRejectsPreOriginSchedule) {
  ScopedFailureHandler guard{check::throwing_handler};
  sim::EventQueue q;
  EXPECT_THROW(q.schedule(sim::SimTime::origin() - sim::Duration::ns(1), [] {}), CheckFailure);
}

TEST(Invariants, DuplicateComponentNameFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  energy::EnergyAccountant acct;
  acct.register_component("hub0/cpu");
  EXPECT_THROW(acct.register_component("hub0/cpu"), CheckFailure);
  // Distinct scopes are fine.
  EXPECT_NO_THROW(acct.register_component("hub1/cpu"));
}

TEST(Invariants, BackwardsSegmentFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  energy::EnergyAccountant acct;
  const auto id = acct.register_component("dev");
  energy::PowerSegment seg{id,
                           energy::Routine::kIdle,
                           sim::SimTime::from_ns(100),
                           sim::SimTime::from_ns(50),
                           1.0,
                           false};
  EXPECT_THROW(acct.add(seg), CheckFailure);
}

TEST(Invariants, NegativeWattageFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  energy::EnergyAccountant acct;
  const auto id = acct.register_component("dev");
  energy::PowerSegment seg{id,
                           energy::Routine::kIdle,
                           sim::SimTime::from_ns(0),
                           sim::SimTime::from_ns(50),
                           -2.0,
                           false};
  EXPECT_THROW(acct.add(seg), CheckFailure);
}

TEST(Invariants, ConservationHoldsOnHealthyLedger) {
  energy::EnergyAccountant acct;
  const auto a = acct.register_component("a");
  const auto b = acct.register_component("b");
  acct.add({a, energy::Routine::kComputation, sim::SimTime::from_ns(0),
            sim::SimTime::from_ns(1'000'000), 1.5, true});
  acct.add({b, energy::Routine::kIdle, sim::SimTime::from_ns(0),
            sim::SimTime::from_ns(2'000'000), 0.25, false});
  EXPECT_NO_THROW(acct.check_conservation());
}

TEST(Invariants, IllegalPowerTransitionFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  const auto id = acct.register_component("dev");
  energy::PowerStateMachine psm{
      sim, acct, id, {{"off", 0.0, false}, {"warm", 0.5, false}, {"on", 2.0, true}}, 0};
  energy::TransitionTable table{3};
  table.allow(0, 1).allow(1, 2).allow(2, 1).allow(1, 0);  // off <-> warm <-> on
  psm.set_transition_table(std::move(table));

  psm.set_state(1);
  psm.set_state(2);
  psm.set_state(1);
  // off -> on without warming up is declared illegal.
  psm.set_state(0);
  EXPECT_THROW(psm.set_state(2), CheckFailure);
  // Same-state set and routine-only changes are never transitions.
  EXPECT_NO_THROW(psm.set_state(0));
  EXPECT_NO_THROW(psm.set_routine(energy::Routine::kComputation));
}

TEST(Invariants, TransitionTableSizeMismatchFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  const auto id = acct.register_component("dev");
  energy::PowerStateMachine psm{sim, acct, id, {{"a", 0.0, false}, {"b", 1.0, true}}, 0};
  EXPECT_THROW(psm.set_transition_table(energy::TransitionTable{5}), CheckFailure);
}

TEST(Invariants, BatteryRejectsNegativeDrain) {
  ScopedFailureHandler guard{check::throwing_handler};
  energy::Battery bat{10.0};
  EXPECT_THROW(bat.drain(-1.0), CheckFailure);
  EXPECT_NO_THROW(bat.drain(5.0));
}

TEST(Invariants, BatteryRejectsBadUsableFraction) {
  ScopedFailureHandler guard{check::throwing_handler};
  EXPECT_THROW(energy::Battery(10.0, 1.5), CheckFailure);
  EXPECT_THROW(energy::Battery(10.0, 0.0), CheckFailure);
}

TEST(Invariants, McuRamOverReleaseFires) {
  ScopedFailureHandler guard{check::throwing_handler};
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  hw::Mcu mcu{sim, acct, energy::McuPowerSpec{}, 100.0, 1024, "mcu"};
  ASSERT_TRUE(mcu.reserve_ram(512));
  EXPECT_FALSE(mcu.reserve_ram(4096));  // over budget: refused, not fatal
  mcu.release_ram(512);
  EXPECT_THROW(mcu.release_ram(1), CheckFailure);
}

#endif  // IOTSIM_CHECKS_ENABLED

}  // namespace
}  // namespace iotsim
