#include "energy/energy_report.h"

#include <gtest/gtest.h>

namespace iotsim::energy {
namespace {

using sim::Duration;
using sim::SimTime;

PowerSegment seg(ComponentId c, Routine r, double t0_ms, double t1_ms, double w,
                 bool busy = true) {
  return PowerSegment{c,
                      r,
                      SimTime::origin() + Duration::from_ms(t0_ms),
                      SimTime::origin() + Duration::from_ms(t1_ms),
                      w,
                      busy};
}

EnergyReport sample_report() {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  const auto nic = acct.register_component("nic");
  acct.add(seg(cpu, Routine::kDataTransfer, 0, 500, 2.0));   // 1.0 J
  acct.add(seg(cpu, Routine::kComputation, 500, 750, 2.0));  // 0.5 J
  acct.add(seg(nic, Routine::kNetwork, 0, 250, 1.0));        // 0.25 J
  acct.add(seg(cpu, Routine::kIdle, 750, 1000, 0.1, false)); // 0.025 J
  return EnergyReport::from_accountant(acct, Duration::sec(1));
}

TEST(EnergyReport, TotalsAndAverages) {
  const auto r = sample_report();
  EXPECT_NEAR(r.total_joules(), 1.775, 1e-12);
  EXPECT_NEAR(r.average_watts(), 1.775, 1e-12);
  EXPECT_EQ(r.elapsed(), Duration::sec(1));
}

TEST(EnergyReport, ComponentLookup) {
  const auto r = sample_report();
  EXPECT_NEAR(r.component_joules("cpu"), 1.525, 1e-12);
  EXPECT_NEAR(r.component_joules("nic"), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(r.component_joules("missing"), 0.0);
}

TEST(EnergyReport, NetworkFoldsIntoComputation) {
  const auto r = sample_report();
  EXPECT_NEAR(r.paper_joules(Routine::kComputation), 0.75, 1e-12);  // 0.5 + 0.25 net
  EXPECT_NEAR(r.paper_fraction(Routine::kComputation), 0.75 / 1.775, 1e-12);
  EXPECT_NEAR(r.paper_joules(Routine::kDataTransfer), 1.0, 1e-12);
}

TEST(EnergyReport, BusyTimeExcludesIdle) {
  const auto r = sample_report();
  EXPECT_EQ(r.busy_time(Routine::kDataTransfer), Duration::ms(500));
  EXPECT_EQ(r.busy_time(Routine::kIdle), Duration::zero());
  EXPECT_EQ(r.total_busy_time(), Duration::ms(1000));  // 500+250+250
}

TEST(EnergyReport, SavingsAndNormalisation) {
  const auto base = sample_report();
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  acct.add(seg(cpu, Routine::kComputation, 0, 250, 2.0));  // 0.5 J
  const auto cheap = EnergyReport::from_accountant(acct, Duration::sec(1));
  EXPECT_NEAR(cheap.savings_vs(base), 1.0 - 0.5 / 1.775, 1e-12);
  EXPECT_NEAR(cheap.normalized_to(base), 0.5 / 1.775, 1e-12);
}

}  // namespace
}  // namespace iotsim::energy
