#include "energy/power_state_machine.h"

#include <gtest/gtest.h>

#include "energy/energy_report.h"
#include "sim/simulator.h"

namespace iotsim::energy {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::Task;

struct Fixture {
  Simulator sim;
  EnergyAccountant acct;
  ComponentId id = acct.register_component("dev");
  PowerStateMachine psm{sim,
                        acct,
                        id,
                        {{"sleep", 0.1, false}, {"active", 2.0, true}},
                        0};
};

TEST(PowerStateMachine, IntegratesAcrossStateChanges) {
  Fixture f;
  auto proc = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(500)};  // 0.5 s asleep
    f.psm.set(1, Routine::kComputation);
    co_await sim::Delay{Duration::ms(250)};  // 0.25 s active
    f.psm.set(0, Routine::kIdle);
    co_await sim::Delay{Duration::ms(250)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  EXPECT_NEAR(f.acct.joules(f.id, Routine::kComputation), 0.5, 1e-12);
  EXPECT_NEAR(f.acct.joules(f.id, Routine::kIdle), 0.1 * 0.75, 1e-12);
  EXPECT_NEAR(f.acct.component_joules(f.id), 0.575, 1e-12);
}

TEST(PowerStateMachine, RedundantSetIsNoop) {
  Fixture f;
  auto proc = [&]() -> Task<void> {
    f.psm.set(1, Routine::kComputation);
    co_await sim::Delay{Duration::ms(100)};
    f.psm.set(1, Routine::kComputation);  // no-op, segment stays open
    co_await sim::Delay{Duration::ms(100)};
    f.psm.flush();
  };
  int segments = 0;
  f.psm.add_listener([&](const PowerSegment&) { ++segments; });
  f.sim.spawn(proc());
  f.sim.run();
  EXPECT_EQ(segments, 1);  // single merged segment
  EXPECT_NEAR(f.acct.joules(f.id, Routine::kComputation), 0.4, 1e-12);
}

TEST(PowerStateMachine, RoutineChangeSplitsAttribution) {
  Fixture f;
  auto proc = [&]() -> Task<void> {
    f.psm.set(1, Routine::kInterrupt);
    co_await sim::Delay{Duration::ms(100)};
    f.psm.set_routine(Routine::kDataTransfer);
    co_await sim::Delay{Duration::ms(300)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  EXPECT_NEAR(f.acct.joules(f.id, Routine::kInterrupt), 0.2, 1e-12);
  EXPECT_NEAR(f.acct.joules(f.id, Routine::kDataTransfer), 0.6, 1e-12);
}

TEST(PowerStateMachine, BusyFlagFollowsStateDefinition) {
  Fixture f;
  auto proc = [&]() -> Task<void> {
    f.psm.set(1, Routine::kComputation);  // busy state
    co_await sim::Delay{Duration::ms(100)};
    f.psm.set(0, Routine::kComputation);  // sleep, not busy
    co_await sim::Delay{Duration::ms(100)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  EXPECT_EQ(f.acct.busy_time(f.id, Routine::kComputation), Duration::ms(100));
}

TEST(PowerStateMachine, ListenerSeesSegments) {
  Fixture f;
  std::vector<PowerSegment> seen;
  f.psm.add_listener([&](const PowerSegment& s) { seen.push_back(s); });
  auto proc = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(10)};
    f.psm.set(1, Routine::kComputation);
    co_await sim::Delay{Duration::ms(20)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0].watts, 0.1);
  EXPECT_DOUBLE_EQ(seen[1].watts, 2.0);
  EXPECT_EQ(seen[1].begin, sim::SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(seen[1].end, sim::SimTime::origin() + Duration::ms(30));
}

TEST(EnergyReport, ConservationInvariantHolds) {
  Fixture f;
  auto proc = [&]() -> Task<void> {
    f.psm.set(1, Routine::kDataCollection);
    co_await sim::Delay{Duration::ms(123)};
    f.psm.set(0, Routine::kDataTransfer);
    co_await sim::Delay{Duration::ms(456)};
    f.psm.set(1, Routine::kComputation);
    co_await sim::Delay{Duration::ms(77)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  const auto report =
      EnergyReport::from_accountant(f.acct, f.sim.now() - sim::SimTime::origin());
  double routine_sum = 0.0;
  for (Routine r : kAllRoutines) routine_sum += report.joules(r);
  EXPECT_NEAR(routine_sum, report.total_joules(), 1e-12);
  EXPECT_NEAR(report.total_joules(), f.acct.total_joules(), 1e-12);
}

}  // namespace
}  // namespace iotsim::energy
