#include "energy/energy_accountant.h"

#include <gtest/gtest.h>

namespace iotsim::energy {
namespace {

using sim::Duration;
using sim::SimTime;

PowerSegment seg(ComponentId c, Routine r, double t0_ms, double t1_ms, double w,
                 bool busy = true) {
  return PowerSegment{c,
                      r,
                      SimTime::origin() + Duration::from_ms(t0_ms),
                      SimTime::origin() + Duration::from_ms(t1_ms),
                      w,
                      busy};
}

TEST(EnergyAccountant, RegistersComponents) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  const auto mcu = acct.register_component("mcu");
  EXPECT_EQ(acct.component_count(), 2u);
  EXPECT_EQ(acct.component_name(cpu), "cpu");
  EXPECT_EQ(acct.component_name(mcu), "mcu");
}

TEST(EnergyAccountant, SegmentEnergyIsWattsTimesSeconds) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  acct.add(seg(cpu, Routine::kComputation, 0, 500, 2.0));
  EXPECT_DOUBLE_EQ(acct.joules(cpu, Routine::kComputation), 1.0);
}

TEST(EnergyAccountant, AccumulatesAcrossSegments) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  acct.add(seg(cpu, Routine::kInterrupt, 0, 100, 1.0));
  acct.add(seg(cpu, Routine::kInterrupt, 200, 300, 1.0));
  EXPECT_DOUBLE_EQ(acct.joules(cpu, Routine::kInterrupt), 0.2);
  EXPECT_EQ(acct.busy_time(cpu, Routine::kInterrupt), Duration::ms(200));
}

TEST(EnergyAccountant, ConservationAcrossRoutines) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  const auto mcu = acct.register_component("mcu");
  double expected = 0.0;
  int i = 0;
  for (Routine r : kAllRoutines) {
    const double w = 0.5 + 0.1 * i++;
    acct.add(seg(cpu, r, 0, 1000, w));
    acct.add(seg(mcu, r, 0, 1000, w / 2));
    expected += w + w / 2;
  }
  EXPECT_NEAR(acct.total_joules(), expected, 1e-12);
  EXPECT_NEAR(acct.component_joules(cpu) + acct.component_joules(mcu), expected, 1e-12);
}

TEST(EnergyAccountant, RoutineTotalsSpanComponents) {
  EnergyAccountant acct;
  const auto a = acct.register_component("a");
  const auto b = acct.register_component("b");
  acct.add(seg(a, Routine::kDataTransfer, 0, 1000, 1.0));
  acct.add(seg(b, Routine::kDataTransfer, 0, 1000, 2.0));
  EXPECT_DOUBLE_EQ(acct.routine_joules(Routine::kDataTransfer), 3.0);
}

TEST(EnergyAccountant, NonBusySegmentsExcludedFromBusyTime) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  acct.add(seg(cpu, Routine::kDataTransfer, 0, 100, 1.0, /*busy=*/false));
  acct.add(seg(cpu, Routine::kDataTransfer, 100, 150, 1.0, /*busy=*/true));
  EXPECT_EQ(acct.busy_time(cpu, Routine::kDataTransfer), Duration::ms(50));
  EXPECT_DOUBLE_EQ(acct.joules(cpu, Routine::kDataTransfer), 0.15);
}

TEST(EnergyAccountant, ResetClearsLedgerButKeepsComponents) {
  EnergyAccountant acct;
  const auto cpu = acct.register_component("cpu");
  acct.add(seg(cpu, Routine::kComputation, 0, 1000, 1.0));
  acct.reset();
  EXPECT_DOUBLE_EQ(acct.total_joules(), 0.0);
  EXPECT_EQ(acct.component_count(), 1u);
}

TEST(Routine, NamesAreDistinct) {
  for (Routine a : kAllRoutines) {
    for (Routine b : kAllRoutines) {
      if (a != b) {
        EXPECT_NE(to_string(a), to_string(b));
      }
    }
  }
}

}  // namespace
}  // namespace iotsim::energy
