#include "energy/power_model.h"

#include <gtest/gtest.h>

#include "energy/energy_report.h"
#include "hw/boards.h"

namespace iotsim::energy {
namespace {

TEST(PowerModel, PaperBreakevenIs1_14ms) {
  // §III-A: 2.5 W × 1.6 ms = 4 mJ; 4 mJ / (5 W − 1.5 W) = 1.14 ms.
  const CpuPowerSpec spec = paper_reference_cpu();
  EXPECT_NEAR(spec.light_sleep_breakeven().to_ms(), 1.1428, 1e-3);
}

TEST(PowerModel, BreakevenShrinksWithCheaperTransition) {
  CpuPowerSpec spec = paper_reference_cpu();
  const auto base = spec.light_sleep_breakeven();
  spec.transition_w /= 2.0;
  EXPECT_LT(spec.light_sleep_breakeven(), base);
}

TEST(PowerModel, BreakevenGrowsWhenSleepSavesLess) {
  CpuPowerSpec spec = paper_reference_cpu();
  const auto base = spec.light_sleep_breakeven();
  spec.light_sleep_w = 4.0;  // sleep barely cheaper than active
  EXPECT_GT(spec.light_sleep_breakeven(), base);
}

TEST(PowerModel, DefaultHubSpecIsSane) {
  const hw::HubSpec spec = hw::default_hub_spec();
  EXPECT_GT(spec.cpu.active_w, spec.cpu.light_sleep_w);
  EXPECT_GT(spec.cpu.light_sleep_w, spec.cpu.deep_sleep_w);
  EXPECT_GT(spec.mcu.active_w, spec.mcu.sleep_w);
  EXPECT_LT(spec.cpu.light_wake_latency, spec.cpu.deep_wake_latency);
  // MCU board must have room for at least a 12 KB batch (step counter).
  EXPECT_GE(spec.mcu_available_ram(), 12u * 1024u);
  // The MCU radio is slower but cheaper than the main one.
  EXPECT_LT(spec.mcu_nic.bytes_per_second, spec.main_nic.bytes_per_second);
  EXPECT_LT(spec.mcu_nic.tx_w, spec.main_nic.tx_w);
}

TEST(PowerModel, TransferTimeMatchesPaperAnchors) {
  const hw::HubSpec spec = hw::default_hub_spec();
  // Fig. 5a: one 12-byte accelerometer sample moves in ≈0.19 ms.
  EXPECT_NEAR(spec.transfer_time(12).to_ms(), 0.19, 0.03);
  // §III-A: 1000 batched samples (12 KB) move in ≈100 ms.
  EXPECT_NEAR(spec.transfer_time(12000).to_ms(), 100.0, 5.0);
}

TEST(PowerModel, McuSleepBreakevenBelowSamplingGap) {
  // The MCU must be able to nap between 1 kHz samples (0.9 ms gaps), or the
  // DataCollection share of Fig. 10 would balloon.
  const hw::HubSpec spec = hw::default_hub_spec();
  EXPECT_LT(spec.mcu.sleep_breakeven(), sim::Duration::from_ms(0.9));
}

}  // namespace
}  // namespace iotsim::energy
