#include "energy/battery.h"

#include <gtest/gtest.h>

namespace iotsim::energy {
namespace {

TEST(Battery, CapacityConversions) {
  Battery b{5.0, 1.0};  // 5 Wh fully usable
  EXPECT_DOUBLE_EQ(b.capacity_joules(), 18000.0);
  EXPECT_DOUBLE_EQ(b.usable_joules(), 18000.0);
}

TEST(Battery, UsableFractionLimitsDepth) {
  Battery b{10.0, 0.8};
  EXPECT_DOUBLE_EQ(b.usable_joules(), 10.0 * 3600.0 * 0.8);
}

TEST(Battery, DrainAndStateOfCharge) {
  Battery b{1.0, 1.0};  // 3600 J
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_TRUE(b.drain(1800.0));
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.5);
  EXPECT_FALSE(b.drain(1800.0));
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.0);
}

TEST(Battery, ChargeFloorsAtZero) {
  Battery b{1.0, 1.0};
  (void)b.drain(10000.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.0);
  b.recharge();
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
}

TEST(Battery, LifetimeAtConstantDraw) {
  Battery b{5.0, 0.9};  // 16200 J usable
  EXPECT_NEAR(b.lifetime(2.0).to_seconds(), 8100.0, 1e-9);
  (void)b.drain(8100.0 * 2.0 / 2.0);  // drain half... 8100 J
  EXPECT_NEAR(b.remaining_lifetime(2.0).to_seconds(), 4050.0, 1e-9);
}

// --- online semantics (env::PowerSource drives these during a run) ---

TEST(Battery, DrainClampedFloorsAtStored) {
  Battery b{1.0, 1.0};  // 3600 J usable
  EXPECT_DOUBLE_EQ(b.stored_joules(), 3600.0);
  EXPECT_DOUBLE_EQ(b.drain_clamped(600.0), 600.0);
  EXPECT_DOUBLE_EQ(b.stored_joules(), 3000.0);
  // More than remains: only the stored energy comes out, charge floors.
  EXPECT_DOUBLE_EQ(b.drain_clamped(5000.0), 3000.0);
  EXPECT_DOUBLE_EQ(b.stored_joules(), 0.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.drain_clamped(1.0), 0.0);
}

TEST(Battery, DrainClampedRespectsUsableFraction) {
  Battery b{1.0, 0.5};  // 1800 J usable of 3600 J nameplate
  EXPECT_DOUBLE_EQ(b.stored_joules(), 1800.0);
  EXPECT_DOUBLE_EQ(b.drain_clamped(3600.0), 1800.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, PartialRechargeFromHarvest) {
  Battery b{1.0, 1.0};
  (void)b.drain_clamped(1000.0);
  EXPECT_DOUBLE_EQ(b.recharge(400.0), 400.0);
  EXPECT_DOUBLE_EQ(b.stored_joules(), 3000.0);
  // Harvest beyond full: only the deficit stores.
  EXPECT_DOUBLE_EQ(b.recharge(1000.0), 600.0);
  EXPECT_DOUBLE_EQ(b.stored_joules(), 3600.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
}

TEST(Battery, DrainRechargeRoundTripKeepsStateOfCharge) {
  Battery b{2.0, 0.9};
  const double stored = b.stored_joules();
  EXPECT_DOUBLE_EQ(b.drain_clamped(500.0), 500.0);
  EXPECT_DOUBLE_EQ(b.recharge(500.0), 500.0);
  EXPECT_DOUBLE_EQ(b.stored_joules(), stored);
}

TEST(Battery, LifetimeAtNonPositiveDrawNeverDepletes) {
  Battery b{5.0, 0.9};
  EXPECT_EQ(b.remaining_lifetime(0.0), sim::Duration::max());
  EXPECT_EQ(b.remaining_lifetime(-1.0), sim::Duration::max());
  EXPECT_EQ(b.lifetime(0.0), sim::Duration::max());
  EXPECT_EQ(b.lifetime(-0.5), sim::Duration::max());
  // A depleted battery at a positive draw lasts zero seconds, not forever.
  (void)b.drain_clamped(b.stored_joules());
  EXPECT_DOUBLE_EQ(b.remaining_lifetime(1.0).to_seconds(), 0.0);
  EXPECT_EQ(b.remaining_lifetime(0.0), sim::Duration::max());
}

TEST(Battery, SavingsTranslateToLifetimeMultiplier) {
  // The paper's headline made concrete: a 85% saving is ~6.7× battery life.
  Battery b{5.0};
  const double base_w = 3.0;
  const double com_w = base_w * (1.0 - 0.85);
  const double multiplier =
      b.lifetime(com_w).to_seconds() / b.lifetime(base_w).to_seconds();
  EXPECT_NEAR(multiplier, 1.0 / 0.15, 1e-9);
}

}  // namespace
}  // namespace iotsim::energy
