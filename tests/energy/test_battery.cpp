#include "energy/battery.h"

#include <gtest/gtest.h>

namespace iotsim::energy {
namespace {

TEST(Battery, CapacityConversions) {
  Battery b{5.0, 1.0};  // 5 Wh fully usable
  EXPECT_DOUBLE_EQ(b.capacity_joules(), 18000.0);
  EXPECT_DOUBLE_EQ(b.usable_joules(), 18000.0);
}

TEST(Battery, UsableFractionLimitsDepth) {
  Battery b{10.0, 0.8};
  EXPECT_DOUBLE_EQ(b.usable_joules(), 10.0 * 3600.0 * 0.8);
}

TEST(Battery, DrainAndStateOfCharge) {
  Battery b{1.0, 1.0};  // 3600 J
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
  EXPECT_TRUE(b.drain(1800.0));
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.5);
  EXPECT_FALSE(b.drain(1800.0));
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.0);
}

TEST(Battery, ChargeFloorsAtZero) {
  Battery b{1.0, 1.0};
  (void)b.drain(10000.0);
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 0.0);
  b.recharge();
  EXPECT_DOUBLE_EQ(b.state_of_charge(), 1.0);
}

TEST(Battery, LifetimeAtConstantDraw) {
  Battery b{5.0, 0.9};  // 16200 J usable
  EXPECT_NEAR(b.lifetime(2.0).to_seconds(), 8100.0, 1e-9);
  (void)b.drain(8100.0 * 2.0 / 2.0);  // drain half... 8100 J
  EXPECT_NEAR(b.remaining_lifetime(2.0).to_seconds(), 4050.0, 1e-9);
}

TEST(Battery, SavingsTranslateToLifetimeMultiplier) {
  // The paper's headline made concrete: a 85% saving is ~6.7× battery life.
  Battery b{5.0};
  const double base_w = 3.0;
  const double com_w = base_w * (1.0 - 0.85);
  const double multiplier =
      b.lifetime(com_w).to_seconds() / b.lifetime(base_w).to_seconds();
  EXPECT_NEAR(multiplier, 1.0 / 0.15, 1e-9);
}

}  // namespace
}  // namespace iotsim::energy
