#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace iotsim::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespected) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r{13};
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng r{17};
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{19};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{23};
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace iotsim::sim
