// Edge-case coverage for the simulation kernel: cancellation through the
// Simulator, re-waiting signals, mutex storms, and horizon interactions.
#include <gtest/gtest.h>

#include "sim/join.h"
#include "sim/simulator.h"

namespace iotsim::sim {
namespace {

TEST(SimulatorEdge, CancelledCallbackNeverFiresAndClockStopsEarly) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.after(Duration::ms(5), [&] { ++fired; });
  sim.after(Duration::ms(1), [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
  // The cancelled entry is dropped lazily, so the last live event was 1 ms.
  EXPECT_EQ(sim.now(), SimTime::origin() + Duration::ms(1));
}

TEST(SimulatorEdge, RunUntilThenContinue) {
  Simulator sim;
  std::vector<double> stamps;
  auto proc = [&]() -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await Delay{Duration::ms(10)};
      stamps.push_back(sim.now().to_ms());
    }
  };
  sim.spawn(proc());
  sim.run_until(SimTime::origin() + Duration::ms(25));
  EXPECT_EQ(stamps.size(), 2u);
  sim.run();  // resume to completion
  EXPECT_EQ(stamps.size(), 4u);
  EXPECT_DOUBLE_EQ(stamps.back(), 40.0);
}

TEST(SimulatorEdge, SignalRewaitSeesOnlyNextNotify) {
  Simulator sim;
  Signal sig;
  int wakes = 0;
  auto waiter = [&]() -> Task<void> {
    co_await sig.wait();
    ++wakes;
    co_await sig.wait();
    ++wakes;
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay{Duration::ms(1)};
    sig.notify_all();  // first wake
    co_await Delay{Duration::ms(1)};
    sig.notify_all();  // second wake
  };
  sim.spawn(waiter());
  sim.spawn(notifier());
  sim.run();
  EXPECT_EQ(wakes, 2);
}

TEST(SimulatorEdge, NotifyWithNoWaitersIsLost) {
  // Signals are condition variables, not latches: an early notify is lost.
  Simulator sim;
  Signal sig;
  bool woke = false;
  auto notifier = [&]() -> Task<void> {
    sig.notify_all();
    co_return;
  };
  auto waiter = [&]() -> Task<void> {
    co_await Delay{Duration::ms(1)};
    co_await sig.wait();
    woke = true;
  };
  sim.spawn(notifier());
  sim.spawn(waiter());
  sim.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(SimulatorEdge, MutexStormStaysFifoAndExclusive) {
  Simulator sim;
  SimMutex mutex;
  int inside = 0;
  int max_inside = 0;
  std::vector<int> order;
  auto proc = [&](int id) -> Task<void> {
    co_await mutex.acquire();
    order.push_back(id);
    ++inside;
    max_inside = std::max(max_inside, inside);
    co_await Delay{Duration::us(100)};
    --inside;
    mutex.release();
  };
  for (int i = 0; i < 50; ++i) sim.spawn(proc(i));
  sim.run();
  EXPECT_EQ(max_inside, 1);
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorEdge, SystemEventRunsAfterRegularEventsAtItsTimestamp) {
  Simulator sim;
  std::vector<int> order;
  const SimTime t = SimTime::origin() + Duration::ms(2);
  sim.at(t, [&] { order.push_back(1); });
  sim.at_system(t, [&] { order.push_back(99); });
  sim.at(t, [&] { order.push_back(2); });  // registered after the system event
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99}));
}

TEST(SimulatorEdge, SystemEventsAreNotCountedAsDispatched) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::origin() + Duration::ms(1), [&] { ++fired; });
  sim.at_system(SimTime::origin() + Duration::ms(1), [&] { ++fired; });
  sim.at_system(SimTime::origin() + Duration::ms(3), [&] {
    ++fired;
    // System events may schedule regular events — those count normally.
    sim.at(sim.now(), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 4);
  // Only the two regular events count: events_dispatched must be identical
  // whether kernel plumbing (AP arbitration) runs on system events or on
  // shard barriers that need none.
  EXPECT_EQ(sim.stats().events_dispatched, 2u);
}

TEST(SimulatorEdge, WhenAllSurvivesImmediateTasks) {
  Simulator sim;
  auto instant = []() -> Task<void> { co_return; };
  auto slow = []() -> Task<void> { co_await Delay{Duration::ms(3)}; };
  bool done = false;
  auto top = [&]() -> Task<void> {
    std::vector<Task<void>> tasks;
    tasks.push_back(instant());
    tasks.push_back(slow());
    tasks.push_back(instant());
    co_await when_all(sim, std::move(tasks));
    done = true;
  };
  sim.spawn(top());
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), SimTime::origin() + Duration::ms(3));
}

}  // namespace
}  // namespace iotsim::sim
