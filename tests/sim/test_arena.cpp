// The coroutine-frame arena: bump allocation, size-class freelist reuse,
// scope nesting, and the owner-tagged frame path that lets frames outlive
// the ArenaScope they were allocated under.
#include "sim/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/process.h"
#include "sim/simulator.h"

namespace iotsim::sim {
namespace {

TEST(Arena, AllocateReservesChunksAndTracksLiveBlocks) {
  Arena a;
  EXPECT_EQ(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.live_blocks(), 0u);
  void* p = a.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(a.bytes_reserved(), 0u);
  EXPECT_EQ(a.live_blocks(), 1u);
  std::memset(p, 0xAB, 100);  // the block must be writable
  a.deallocate(p, 100);
  EXPECT_EQ(a.live_blocks(), 0u);
}

TEST(Arena, FreelistRecyclesSameSizeClass) {
  Arena a;
  void* p = a.allocate(128);
  a.deallocate(p, 128);
  // Same size class ⇒ the freed block comes straight back; the arena does
  // not grow during steady-state frame churn.
  const std::size_t reserved = a.bytes_reserved();
  void* q = a.allocate(128);
  EXPECT_EQ(q, p);
  EXPECT_EQ(a.bytes_reserved(), reserved);
  a.deallocate(q, 128);
}

TEST(Arena, ManyBlocksSpanChunks) {
  Arena a;
  std::vector<void*> blocks;
  // 2k blocks of 1 KiB ⇒ ~2 MiB, far beyond one 256 KiB chunk.
  for (int i = 0; i < 2000; ++i) blocks.push_back(a.allocate(1024));
  EXPECT_EQ(a.live_blocks(), blocks.size());
  EXPECT_GE(a.bytes_reserved(), blocks.size() * 1024);
  for (void* p : blocks) a.deallocate(p, 1024);
  EXPECT_EQ(a.live_blocks(), 0u);
}

TEST(ArenaScope, InstallsAndRestoresNested) {
  EXPECT_EQ(current_arena(), nullptr);
  Arena outer, inner;
  {
    ArenaScope s1{outer};
    EXPECT_EQ(current_arena(), &outer);
    {
      ArenaScope s2{inner};
      EXPECT_EQ(current_arena(), &inner);
    }
    EXPECT_EQ(current_arena(), &outer);
  }
  EXPECT_EQ(current_arena(), nullptr);
}

TEST(FrameAlloc, FallsBackToHeapWithoutScope) {
  ASSERT_EQ(current_arena(), nullptr);
  void* frame = frame_allocate(256);
  ASSERT_NE(frame, nullptr);
  std::memset(frame, 0x5A, 256);
  frame_free(frame);  // must route to the global heap, not any arena
}

TEST(FrameAlloc, UsesScopeArenaAndOutlivesScope) {
  Arena a;
  void* frame = nullptr;
  {
    ArenaScope scope{a};
    frame = frame_allocate(512);
    ASSERT_NE(frame, nullptr);
    EXPECT_EQ(a.live_blocks(), 1u);
  }
  // The scope is gone but the header still tags the owner: freeing outside
  // any scope (or under a different one) must return the block to `a`.
  Arena other;
  ArenaScope scope{other};
  frame_free(frame);
  EXPECT_EQ(a.live_blocks(), 0u);
  EXPECT_EQ(other.live_blocks(), 0u);
}

TEST(ArenaAllocator, ContainersDrawFromTheArena) {
  Arena a;
  {
    std::deque<int, ArenaAllocator<int>> d{ArenaAllocator<int>{&a}};
    for (int i = 0; i < 1000; ++i) d.push_back(i);
    EXPECT_GT(a.live_blocks(), 0u);
    EXPECT_EQ(d.front(), 0);
    EXPECT_EQ(d.back(), 999);
  }
  // Container destruction returns every spine block to the arena.
  EXPECT_EQ(a.live_blocks(), 0u);
}

TEST(ArenaAllocator, NullArenaFallsBackToTheGlobalHeap) {
  Arena a;
  {
    std::deque<int, ArenaAllocator<int>> d{ArenaAllocator<int>{}};
    for (int i = 0; i < 100; ++i) d.push_back(i);
    EXPECT_EQ(a.live_blocks(), 0u);  // nothing routed into any arena
    EXPECT_EQ(d.size(), 100u);
  }
}

TEST(ArenaAllocator, EqualityFollowsTheArenaPointer) {
  Arena a, b;
  const ArenaAllocator<int> ia{&a};
  const ArenaAllocator<double> da{&a};
  const ArenaAllocator<int> ib{&b};
  EXPECT_TRUE(ia == da);  // rebind to another T, same arena
  EXPECT_FALSE(ia == ib);
  EXPECT_EQ(ArenaAllocator<int>{}.arena(), nullptr);
}

TEST(FrameAlloc, CoroutineFramesComeFromTheScopeArena) {
  Arena a;
  int ran = 0;
  {
    ArenaScope scope{a};
    Simulator sim;
    auto proc = [&]() -> Task<void> {
      co_await Delay{Duration::ms(1)};
      ++ran;
    };
    sim.spawn(proc());
    EXPECT_GT(a.live_blocks(), 0u);  // the frame lives in the arena
    sim.run();
    EXPECT_EQ(ran, 1);
    // The simulator retains completed process frames until destruction.
  }
  EXPECT_EQ(a.live_blocks(), 0u);  // frames destroyed ⇒ returned to the arena
}

}  // namespace
}  // namespace iotsim::sim
