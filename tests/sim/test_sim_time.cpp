#include "sim/sim_time.h"

#include <gtest/gtest.h>

namespace iotsim::sim {
namespace {

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::us(1).count_ns(), 1'000);
  EXPECT_EQ(Duration::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(Duration::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(Duration::sec(1), Duration::ms(1000));
  EXPECT_EQ(Duration::ms(1), Duration::us(1000));
}

TEST(Duration, FloatingFactoriesRound) {
  EXPECT_EQ(Duration::from_ms(1.5).count_ns(), 1'500'000);
  EXPECT_EQ(Duration::from_us(0.1).count_ns(), 100);
  EXPECT_EQ(Duration::from_seconds(2.5), Duration::ms(2500));
  // Rounds to nearest, not truncates.
  EXPECT_EQ(Duration::from_us(0.0006).count_ns(), 1);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::ms(3);
  const auto b = Duration::ms(2);
  EXPECT_EQ(a + b, Duration::ms(5));
  EXPECT_EQ(a - b, Duration::ms(1));
  EXPECT_EQ(a * 4, Duration::ms(12));
  EXPECT_EQ(4 * a, Duration::ms(12));
  EXPECT_EQ(a / 3, Duration::ms(1));
  EXPECT_EQ(Duration::sec(1) / Duration::ms(1), 1000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::us(999), Duration::ms(1));
  EXPECT_GT(Duration::zero(), Duration::ms(-1));
  EXPECT_TRUE(Duration::ms(-1).is_negative());
  EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::us(1500).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::ns(1500).to_us(), 1.5);
}

TEST(SimTime, OriginAndOffsets) {
  const auto t0 = SimTime::origin();
  const auto t1 = t0 + Duration::ms(10);
  EXPECT_EQ((t1 - t0), Duration::ms(10));
  EXPECT_EQ(t1 - Duration::ms(10), t0);
  EXPECT_LT(t0, t1);
  EXPECT_LT(t1, SimTime::infinite());
}

TEST(SimTime, CompoundAssign) {
  auto t = SimTime::origin();
  t += Duration::sec(2);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.to_ms(), 2000.0);
}

TEST(SimTime, ToString) {
  EXPECT_EQ(SimTime::origin().to_string(), "t=0s");
  EXPECT_FALSE(Duration::ms(3).to_string().empty());
  EXPECT_FALSE(Duration::us(3).to_string().empty());
  EXPECT_FALSE(Duration::ns(3).to_string().empty());
  EXPECT_FALSE(Duration::sec(3).to_string().empty());
}

}  // namespace
}  // namespace iotsim::sim
