#include "sim/join.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace iotsim::sim {
namespace {

TEST(WhenAll, CompletesAtSlowestTask) {
  Simulator sim;
  auto worker = [](Duration d) -> Task<void> { co_await Delay{d}; };
  SimTime end;
  auto top = [&]() -> Task<void> {
    std::vector<Task<void>> tasks;
    tasks.push_back(worker(Duration::ms(5)));
    tasks.push_back(worker(Duration::ms(20)));
    tasks.push_back(worker(Duration::ms(10)));
    co_await when_all(sim, std::move(tasks));
    end = sim.now();
  };
  sim.spawn(top());
  sim.run();
  EXPECT_EQ(end, SimTime::origin() + Duration::ms(20));
}

TEST(WhenAll, TasksRunConcurrentlyNotSequentially) {
  Simulator sim;
  auto worker = [](Duration d) -> Task<void> { co_await Delay{d}; };
  SimTime end;
  auto top = [&]() -> Task<void> {
    co_await when_all(sim, worker(Duration::ms(10)), worker(Duration::ms(10)));
    end = sim.now();
  };
  sim.spawn(top());
  sim.run();
  EXPECT_EQ(end, SimTime::origin() + Duration::ms(10));  // not 20
}

TEST(WhenAll, EmptyVectorCompletesImmediately) {
  Simulator sim;
  bool done = false;
  auto top = [&]() -> Task<void> {
    co_await when_all(sim, {});
    done = true;
  };
  sim.spawn(top());
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(JoinCounter, WaitAfterAllArrivedReturnsImmediately) {
  Simulator sim;
  bool done = false;
  auto top = [&]() -> Task<void> {
    JoinCounter c{1};
    c.arrive();
    co_await c.wait();
    done = true;
  };
  sim.spawn(top());
  sim.run();
  EXPECT_TRUE(done);
}

TEST(WhenAll, NestedWhenAllComposes) {
  Simulator sim;
  auto worker = [](Duration d) -> Task<void> { co_await Delay{d}; };
  SimTime end;
  auto top = [&]() -> Task<void> {
    co_await when_all(sim, worker(Duration::ms(4)),
                      when_all(sim, worker(Duration::ms(7)), worker(Duration::ms(2))));
    end = sim.now();
  };
  sim.spawn(top());
  sim.run();
  EXPECT_EQ(end, SimTime::origin() + Duration::ms(7));
}

}  // namespace
}  // namespace iotsim::sim
