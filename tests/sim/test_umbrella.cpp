// The umbrella header must compile standalone and expose the public API.
#include "iotsim.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  iotsim::core::Scenario sc;
  sc.app_ids = {iotsim::apps::AppId::kA3ArduinoJson};
  sc.scheme = iotsim::core::Scheme::kBatching;
  sc.windows = 1;
  const auto result = iotsim::core::run_scenario(sc);
  EXPECT_GT(result.total_joules(), 0.0);
  EXPECT_TRUE(result.qos_met);

  iotsim::energy::Battery pack{2.0};
  EXPECT_GT(pack.lifetime(result.energy).to_seconds(), 0.0);

  const auto doc = iotsim::codecs::json::parse(iotsim::core::to_json_text(result));
  EXPECT_TRUE(doc.ok());
}

}  // namespace
