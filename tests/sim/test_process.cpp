#include "sim/process.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.h"

namespace iotsim::sim {
namespace {

TEST(Simulator, DelayAdvancesClock) {
  Simulator sim;
  SimTime observed;
  auto proc = [&]() -> Task<void> {
    co_await Delay{Duration::ms(5)};
    observed = sim.now();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(observed, SimTime::origin() + Duration::ms(5));
  EXPECT_TRUE(sim.all_processes_done());
}

TEST(Simulator, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<double> stamps;
  auto proc = [&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await Delay{Duration::ms(10)};
      stamps.push_back(sim.now().to_ms());
    }
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(stamps, (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(Simulator, ChildTaskReturnsValue) {
  Simulator sim;
  int result = 0;
  auto child = [&]() -> Task<int> {
    co_await Delay{Duration::ms(1)};
    co_return 42;
  };
  auto parent = [&]() -> Task<void> { result = co_await child(); };
  sim.spawn(parent());
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Simulator, NestedChildrenComposeTime) {
  Simulator sim;
  auto leaf = []() -> Task<int> {
    co_await Delay{Duration::ms(2)};
    co_return 1;
  };
  auto mid = [&]() -> Task<int> {
    int sum = 0;
    for (int i = 0; i < 3; ++i) sum += co_await leaf();
    co_return sum;
  };
  int total = 0;
  SimTime end;
  auto top = [&]() -> Task<void> {
    total = co_await mid();
    end = sim.now();
  };
  sim.spawn(top());
  sim.run();
  EXPECT_EQ(total, 3);
  EXPECT_EQ(end, SimTime::origin() + Duration::ms(6));
}

TEST(Simulator, TwoProcessesInterleave) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [&](int id, Duration step) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      co_await Delay{step};
      order.push_back(id);
    }
  };
  sim.spawn(proc(1, Duration::ms(3)));  // fires at 3, 6
  sim.spawn(proc(2, Duration::ms(4)));  // fires at 4, 8
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(Simulator, SignalWakesAllWaiters) {
  Simulator sim;
  Signal sig;
  int woken = 0;
  auto waiter = [&]() -> Task<void> {
    co_await sig.wait();
    ++woken;
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay{Duration::ms(1)};
    sig.notify_all();
  };
  sim.spawn(waiter());
  sim.spawn(waiter());
  sim.spawn(notifier());
  sim.run();
  EXPECT_EQ(woken, 2);
}

TEST(Simulator, SignalNotifyOneWakesOne) {
  Simulator sim;
  Signal sig;
  int woken = 0;
  auto waiter = [&]() -> Task<void> {
    co_await sig.wait();
    ++woken;
  };
  auto notifier = [&]() -> Task<void> {
    co_await Delay{Duration::ms(1)};
    sig.notify_one();
  };
  sim.spawn(waiter());
  sim.spawn(waiter());
  sim.spawn(notifier());
  sim.run();
  EXPECT_EQ(woken, 1);
  EXPECT_EQ(sig.waiter_count(), 1u);
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(Simulator, MutexSerializesFifo) {
  Simulator sim;
  SimMutex mutex;
  std::vector<std::pair<int, double>> log;
  auto proc = [&](int id) -> Task<void> {
    co_await mutex.acquire();
    log.emplace_back(id, sim.now().to_ms());
    co_await Delay{Duration::ms(10)};
    mutex.release();
  };
  sim.spawn(proc(1));
  sim.spawn(proc(2));
  sim.spawn(proc(3));
  sim.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<int, double>{1, 0.0}));
  EXPECT_EQ(log[1], (std::pair<int, double>{2, 10.0}));
  EXPECT_EQ(log[2], (std::pair<int, double>{3, 20.0}));
}

TEST(Simulator, MutexUncontendedIsImmediate) {
  Simulator sim;
  SimMutex mutex;
  double acquired_at = -1.0;
  auto proc = [&]() -> Task<void> {
    co_await mutex.acquire();
    acquired_at = sim.now().to_ms();
    mutex.release();
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(acquired_at, 0.0);
  EXPECT_FALSE(mutex.locked());
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  auto proc = [&]() -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await Delay{Duration::ms(10)};
      ++fired;
    }
  };
  sim.spawn(proc());
  sim.run_until(SimTime::origin() + Duration::ms(35));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), SimTime::origin() + Duration::ms(35));
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int fired = 0;
  auto proc = [&]() -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await Delay{Duration::ms(1)};
      if (++fired == 5) sim.stop();
    }
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, ExceptionIsCapturedAndRethrown) {
  Simulator sim;
  auto proc = []() -> Task<void> {
    co_await Delay{Duration::ms(1)};
    throw std::runtime_error("boom");
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_THROW(sim.check_processes(), std::runtime_error);
}

TEST(Simulator, ChildExceptionPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  auto child = []() -> Task<int> {
    co_await Delay{Duration::ms(1)};
    throw std::runtime_error("child boom");
  };
  auto parent = [&]() -> Task<void> {
    try {
      (void)co_await child();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  };
  sim.spawn(parent());
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, ClockListenerObservesAdvances) {
  Simulator sim;
  std::vector<double> ticks;
  sim.add_clock_listener([&](SimTime t) { ticks.push_back(t.to_ms()); });
  auto proc = []() -> Task<void> {
    co_await Delay{Duration::ms(2)};
    co_await Delay{Duration::ms(3)};
  };
  sim.spawn(proc());
  sim.run();
  EXPECT_EQ(ticks, (std::vector<double>{2.0, 5.0}));
}

TEST(Simulator, ZeroDelayYieldsButKeepsTime) {
  Simulator sim;
  std::vector<int> order;
  auto a = [&]() -> Task<void> {
    order.push_back(1);
    co_await Delay{Duration::zero()};
    order.push_back(3);
  };
  auto b = [&]() -> Task<void> {
    order.push_back(2);
    co_return;
  };
  sim.spawn(a());
  sim.spawn(b());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::origin());
}

}  // namespace
}  // namespace iotsim::sim
