// The kernel's scheduler determinism contract: BinaryHeapScheduler and
// CalendarQueue yield the identical pop sequence for the identical push/pop
// history, so which structure is active never changes simulation results.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace iotsim::sim {
namespace {

std::vector<SchedEntry> drain(Scheduler& s) {
  std::vector<SchedEntry> out;
  out.reserve(s.size());
  while (!s.empty()) out.push_back(s.pop());
  return out;
}

void expect_same_sequence(const std::vector<SchedEntry>& a,
                          const std::vector<SchedEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << "at pop " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "at pop " << i;
  }
}

TEST(Scheduler, CalendarMatchesHeapOnUniformFuzz) {
  Rng rng{0xC0FFEEu};
  BinaryHeapScheduler heap;
  CalendarQueue cal;
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    const SchedEntry e{SimTime::from_ns(rng.uniform_int(0, 1'000'000)), seq};
    heap.push(e);
    cal.push(e);
  }
  expect_same_sequence(drain(heap), drain(cal));
}

TEST(Scheduler, CalendarMatchesHeapOnHeavyTies) {
  // Many entries share few distinct timestamps: the FIFO tie-break is the
  // whole ordering signal, and equal times must land in one bucket.
  Rng rng{42};
  BinaryHeapScheduler heap;
  CalendarQueue cal;
  for (std::uint64_t seq = 0; seq < 3000; ++seq) {
    const SchedEntry e{SimTime::from_ns(rng.uniform_int(0, 7) * 1000), seq};
    heap.push(e);
    cal.push(e);
  }
  expect_same_sequence(drain(heap), drain(cal));
}

TEST(Scheduler, CalendarMatchesHeapOnInterleavedPushPop) {
  // The realistic kernel pattern: pops interleaved with pushes whose times
  // hover near the current minimum (event handlers scheduling follow-ups).
  Rng rng{7};
  BinaryHeapScheduler heap;
  CalendarQueue cal;
  std::int64_t now_ns = 0;
  std::uint64_t seq = 0;
  std::vector<SchedEntry> heap_pops, cal_pops;
  for (int step = 0; step < 20000; ++step) {
    const bool push = heap.empty() || rng.uniform() < 0.55;
    if (push) {
      const SchedEntry e{SimTime::from_ns(now_ns + rng.uniform_int(0, 50'000)), seq++};
      heap.push(e);
      cal.push(e);
    } else {
      const SchedEntry a = heap.pop();
      const SchedEntry b = cal.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      now_ns = a.time.count_ns();
      heap_pops.push_back(a);
      cal_pops.push_back(b);
    }
  }
  expect_same_sequence(drain(heap), drain(cal));
}

TEST(Scheduler, CalendarHandlesSparseTails) {
  // A dense cluster plus far-future stragglers: the pop scan must not walk
  // millions of empty buckets, and ordering must survive the gap.
  BinaryHeapScheduler heap;
  CalendarQueue cal;
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const SchedEntry e{SimTime::from_ns(i * 10), seq++};
    heap.push(e);
    cal.push(e);
  }
  for (int i = 0; i < 5; ++i) {
    const SchedEntry e{SimTime::from_ns(1'000'000'000'000 + i), seq++};
    heap.push(e);
    cal.push(e);
  }
  expect_same_sequence(drain(heap), drain(cal));
}

TEST(Scheduler, CalendarCursorRewindsOnEarlierPush) {
  CalendarQueue cal;
  cal.push({SimTime::from_ns(1'000'000), 1});
  EXPECT_EQ(cal.pop().seq, 1u);
  // The cursor has advanced to t=1ms; an earlier push must still pop first.
  cal.push({SimTime::from_ns(10), 2});
  cal.push({SimTime::from_ns(2'000'000), 3});
  EXPECT_EQ(cal.pop().seq, 2u);
  EXPECT_EQ(cal.pop().seq, 3u);
  EXPECT_TRUE(cal.empty());
}

TEST(Scheduler, CalendarAdoptsBatchPreservingOrder) {
  // The heap→calendar migration path: a pre-existing population is adopted
  // wholesale and must drain in exact (time, seq) order.
  Rng rng{99};
  std::vector<SchedEntry> batch;
  for (std::uint64_t seq = 0; seq < 4096; ++seq) {
    batch.push_back({SimTime::from_ns(rng.uniform_int(0, 500'000)), seq});
  }
  std::vector<SchedEntry> expected = batch;
  std::sort(expected.begin(), expected.end());
  CalendarQueue cal{std::move(batch)};
  expect_same_sequence(expected, drain(cal));
}

TEST(Scheduler, CalendarResizesUnderGrowth) {
  CalendarQueue cal;
  const std::size_t initial_buckets = cal.bucket_count();
  for (std::uint64_t seq = 0; seq < 100'000; ++seq) {
    cal.push({SimTime::from_ns(static_cast<std::int64_t>(seq) * 137), seq});
  }
  EXPECT_GT(cal.bucket_count(), initial_buckets);
  SimTime prev = SimTime::origin();
  while (!cal.empty()) {
    const SchedEntry e = cal.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventQueueScheduler, StartsOnHeapAndMigratesUnderFleetPressure) {
  EventQueue q;
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kBinaryHeap);
  for (std::size_t i = 0; i <= EventQueue::kCalendarSwitchThreshold; ++i) {
    q.schedule(SimTime::from_ns(static_cast<std::int64_t>(i)), [] {});
  }
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kCalendar);
  EXPECT_EQ(q.peak_size(), EventQueue::kCalendarSwitchThreshold + 1);
}

TEST(EventQueueScheduler, MigrationPreservesPendingOrderAndCancels) {
  // Build identical histories on a forced-heap queue and an auto-migrating
  // one; the dispatch order must be identical through the switch.
  auto run_history = [](bool pin_heap) {
    EventQueue q;
    if (pin_heap) q.force_scheduler(SchedulerKind::kBinaryHeap);
    Rng rng{123};
    std::vector<EventId> ids;
    std::vector<std::uint64_t> fired;
    for (std::uint64_t i = 0; i < EventQueue::kCalendarSwitchThreshold + 64; ++i) {
      ids.push_back(q.schedule(SimTime::from_ns(rng.uniform_int(0, 1'000'000)),
                               [&fired, i] { fired.push_back(i); }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 7) q.cancel(ids[i]);
    while (!q.empty()) q.pop().callback();
    return fired;
  };
  EXPECT_EQ(run_history(true), run_history(false));
}

TEST(EventQueueScheduler, ForceSchedulerPinsAndMatchesDefault) {
  auto dispatch_order = [](SchedulerKind kind) {
    EventQueue q;
    q.force_scheduler(kind);
    EXPECT_EQ(q.scheduler_kind(), kind);
    Rng rng{55};
    std::vector<int> fired;
    for (int i = 0; i < 2000; ++i) {
      q.schedule(SimTime::from_ns(rng.uniform_int(0, 10'000)),
                 [&fired, i] { fired.push_back(i); });
    }
    while (!q.empty()) q.pop().callback();
    EXPECT_EQ(q.scheduler_kind(), kind);  // pinned: no auto-switch either way
    return fired;
  };
  EXPECT_EQ(dispatch_order(SchedulerKind::kBinaryHeap),
            dispatch_order(SchedulerKind::kCalendar));
}

}  // namespace
}  // namespace iotsim::sim
