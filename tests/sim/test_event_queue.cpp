#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace iotsim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  q.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTime) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_ns(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(SimTime::from_ns(1), [&] { ++fired; });
  q.schedule(SimTime::from_ns(2), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(SimTime::from_ns(1), [] {});
  q.cancel(9999);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredIdIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::from_ns(1), [] {});
  q.pop().callback();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(7), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::from_ns(7));
}

TEST(EventQueue, NextTimeOnEmptyIsInfinite) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::infinite());
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, MigratesToCalendarExactlyAtThreshold) {
  EventQueue q;
  // One below the threshold: still the binary heap.
  for (std::size_t i = 0; i + 1 < EventQueue::kCalendarSwitchThreshold; ++i) {
    q.schedule(SimTime::from_ns(static_cast<std::int64_t>(i % 97)), [] {});
  }
  ASSERT_EQ(q.size(), EventQueue::kCalendarSwitchThreshold - 1);
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kBinaryHeap);
  // The event that reaches the threshold flips the scheduler.
  q.schedule(SimTime::from_ns(3), [] {});
  EXPECT_EQ(q.size(), EventQueue::kCalendarSwitchThreshold);
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kCalendar);
}

TEST(EventQueue, CalendarMigrationIsOneWayAndOrderPreserving) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  for (std::size_t i = 0; i < EventQueue::kCalendarSwitchThreshold + 32; ++i) {
    const auto t = static_cast<std::int64_t>((i * 31) % 257);
    q.schedule(SimTime::from_ns(t), [&popped, t] { popped.push_back(t); });
  }
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kCalendar);
  // Draining below the threshold must not migrate back.
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kCalendar);
  ASSERT_EQ(popped.size(), EventQueue::kCalendarSwitchThreshold + 32);
  for (std::size_t i = 1; i < popped.size(); ++i) EXPECT_LE(popped[i - 1], popped[i]);
}

TEST(EventQueue, PinnedSchedulerNeverAutoMigrates) {
  EventQueue q;
  q.force_scheduler(SchedulerKind::kBinaryHeap);
  for (std::size_t i = 0; i < EventQueue::kCalendarSwitchThreshold + 8; ++i) {
    q.schedule(SimTime::from_ns(1), [] {});
  }
  EXPECT_EQ(q.scheduler_kind(), SchedulerKind::kBinaryHeap);
}

TEST(EventQueue, SystemEventFiresAfterRegularEventsAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_ns(40);
  q.schedule(t, [&] { order.push_back(1); });
  // Registered *before* the later regular events, yet fires after them.
  q.schedule_last(t, [&] { order.push_back(99); });
  q.schedule(t, [&] { order.push_back(2); });
  q.schedule(SimTime::from_ns(50), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 99, 3}));
}

TEST(EventQueue, SystemEventsKeepRegistrationOrderAmongThemselves) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_ns(7);
  q.schedule_last(t, [&] { order.push_back(10); });
  q.schedule_last(t, [&] { order.push_back(11); });
  q.schedule(t, [&] { order.push_back(0); });
  while (!q.empty()) q.pop().callback();
  // Ids descend from 2^64−1 and the tie-break is ascending id, so same-time
  // system events pop in *reverse* registration order. Documented, not
  // relied on: the kernel arms at most one system event per timestamp.
  EXPECT_EQ(order, (std::vector<int>{0, 11, 10}));
}

TEST(EventQueue, SystemEventIdsSitAboveTheFloorAndAreCancellable) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_last(SimTime::from_ns(1), [&] { ++fired; });
  EXPECT_GE(id, EventQueue::kSystemIdFloor);
  EXPECT_LT(q.schedule(SimTime::from_ns(1), [] {}), EventQueue::kSystemIdFloor);
  q.cancel(id);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  // Insert with a scrambled but deterministic pattern of times.
  for (std::int64_t i = 0; i < 2000; ++i) {
    const std::int64_t t = (i * 7919) % 1009;
    q.schedule(SimTime::from_ns(t), [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(popped.size(), 2000u);
  for (std::size_t i = 1; i < popped.size(); ++i) EXPECT_LE(popped[i - 1], popped[i]);
}

}  // namespace
}  // namespace iotsim::sim
