#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace iotsim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  q.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  q.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtEqualTime) {
  EventQueue q;
  std::vector<int> order;
  const auto t = SimTime::from_ns(5);
  for (int i = 0; i < 10; ++i) {
    q.schedule(t, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(SimTime::from_ns(1), [&] { ++fired; });
  q.schedule(SimTime::from_ns(2), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(SimTime::from_ns(1), [] {});
  q.cancel(9999);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelFiredIdIsNoop) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::from_ns(1), [] {});
  q.pop().callback();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(7), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::from_ns(7));
}

TEST(EventQueue, NextTimeOnEmptyIsInfinite) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::infinite());
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.schedule(SimTime::from_ns(1), [] {});
  q.schedule(SimTime::from_ns(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> popped;
  // Insert with a scrambled but deterministic pattern of times.
  for (std::int64_t i = 0; i < 2000; ++i) {
    const std::int64_t t = (i * 7919) % 1009;
    q.schedule(SimTime::from_ns(t), [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().callback();
  ASSERT_EQ(popped.size(), 2000u);
  for (std::size_t i = 1; i < popped.size(); ++i) EXPECT_LE(popped[i - 1], popped[i]);
}

}  // namespace
}  // namespace iotsim::sim
