#include "trace/mips_counter.h"

#include <gtest/gtest.h>

namespace iotsim::trace {
namespace {

TEST(MipsCounter, AccumulatesPerOwner) {
  MipsCounter c;
  c.add("step_counter", 1'000'000);
  c.add("step_counter", 2'000'000);
  c.add("jpeg", 5'000'000);
  EXPECT_EQ(c.instructions("step_counter"), 3'000'000u);
  EXPECT_EQ(c.instructions("jpeg"), 5'000'000u);
  EXPECT_EQ(c.total_instructions(), 8'000'000u);
}

TEST(MipsCounter, MipsIsRatePerWindow) {
  MipsCounter c;
  c.add("app", 47'450'000);  // Fig. 6 average: 47.45 MIPS over a 1 s window
  EXPECT_NEAR(c.mips("app", sim::Duration::sec(1)), 47.45, 1e-9);
  EXPECT_NEAR(c.mips("app", sim::Duration::ms(500)), 94.9, 1e-9);
}

TEST(MipsCounter, UnknownOwnerIsZero) {
  MipsCounter c;
  EXPECT_EQ(c.instructions("nope"), 0u);
  EXPECT_DOUBLE_EQ(c.mips("nope", sim::Duration::sec(1)), 0.0);
}

TEST(MipsCounter, ZeroWindowGivesZero) {
  MipsCounter c;
  c.add("app", 1000);
  EXPECT_DOUBLE_EQ(c.mips("app", sim::Duration::zero()), 0.0);
}

TEST(MipsCounter, ResetClears) {
  MipsCounter c;
  c.add("app", 1000);
  c.reset();
  EXPECT_EQ(c.total_instructions(), 0u);
}

}  // namespace
}  // namespace iotsim::trace
