#include "trace/memory_profiler.h"

#include <gtest/gtest.h>

namespace iotsim::trace {
namespace {

TEST(MemoryProfiler, TracksLiveAndPeakHeap) {
  MemoryProfiler p;
  p.on_alloc(100);
  p.on_alloc(200);
  EXPECT_EQ(p.live_heap_bytes(), 300u);
  EXPECT_EQ(p.peak_heap_bytes(), 300u);
  p.on_free(200);
  EXPECT_EQ(p.live_heap_bytes(), 100u);
  EXPECT_EQ(p.peak_heap_bytes(), 300u);  // peak survives frees
}

TEST(MemoryProfiler, StackTracking) {
  MemoryProfiler p;
  {
    StackFrame outer{p, 128};
    EXPECT_EQ(p.live_stack_bytes(), 128u);
    {
      StackFrame inner{p, 64};
      EXPECT_EQ(p.live_stack_bytes(), 192u);
    }
    EXPECT_EQ(p.live_stack_bytes(), 128u);
  }
  EXPECT_EQ(p.live_stack_bytes(), 0u);
  EXPECT_EQ(p.peak_stack_bytes(), 192u);
}

TEST(MemoryProfiler, ResetPeaksKeepsLive) {
  MemoryProfiler p;
  p.on_alloc(500);
  p.on_free(400);
  p.reset_peaks();
  EXPECT_EQ(p.peak_heap_bytes(), 100u);
}

TEST(Workspace, AllocationsAreProfiled) {
  MemoryProfiler p;
  {
    Workspace ws{p};
    double* buf = ws.alloc<double>(1000);
    ASSERT_NE(buf, nullptr);
    buf[0] = 1.0;
    buf[999] = 2.0;
    EXPECT_EQ(p.live_heap_bytes(), 8000u);
    EXPECT_EQ(p.allocation_count(), 1u);
  }
  EXPECT_EQ(p.live_heap_bytes(), 0u);
  EXPECT_EQ(p.peak_heap_bytes(), 8000u);
}

TEST(Workspace, ClearReleasesAll) {
  MemoryProfiler p;
  Workspace ws{p};
  ws.alloc<int>(10);
  ws.alloc<float>(20);
  ws.clear();
  EXPECT_EQ(p.live_heap_bytes(), 0u);
  // Peak reflects the high-water mark of both buffers.
  EXPECT_EQ(p.peak_heap_bytes(), 10u * sizeof(int) + 20u * sizeof(float));
}

TEST(Workspace, PeakReflectsSimultaneousBuffers) {
  MemoryProfiler p;
  Workspace ws{p};
  ws.alloc<std::uint8_t>(100);
  ws.clear();
  ws.alloc<std::uint8_t>(50);
  ws.clear();
  EXPECT_EQ(p.peak_heap_bytes(), 100u);
}

}  // namespace
}  // namespace iotsim::trace
