#include "trace/power_trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/simulator.h"

namespace iotsim::trace {
namespace {

using energy::EnergyAccountant;
using energy::PowerStateMachine;
using energy::Routine;
using sim::Duration;
using sim::SimTime;

struct Fixture {
  sim::Simulator sim;
  EnergyAccountant acct;
  energy::ComponentId id = acct.register_component("dev");
  PowerStateMachine psm{sim, acct, id, {{"off", 0.0, false}, {"on", 3.0, true}}, 0};
  PowerTrace trace;

  Fixture() { trace.attach(psm, "dev"); }

  void run_square_wave() {
    auto proc = [this]() -> sim::Task<void> {
      for (int i = 0; i < 3; ++i) {
        psm.set(1, Routine::kComputation);
        co_await sim::Delay{Duration::ms(10)};
        psm.set(0, Routine::kIdle);
        co_await sim::Delay{Duration::ms(10)};
      }
      psm.flush();
    };
    sim.spawn(proc());
    sim.run();
  }
};

TEST(PowerTrace, RecordsSegments) {
  Fixture f;
  f.run_square_wave();
  EXPECT_EQ(f.trace.segment_count(), 6u);
}

TEST(PowerTrace, WattsAtSamplesWaveform) {
  Fixture f;
  f.run_square_wave();
  EXPECT_DOUBLE_EQ(f.trace.watts_at(SimTime::origin() + Duration::ms(5)), 3.0);
  EXPECT_DOUBLE_EQ(f.trace.watts_at(SimTime::origin() + Duration::ms(15)), 0.0);
  EXPECT_DOUBLE_EQ(f.trace.watts_at(SimTime::origin() + Duration::ms(25)), 3.0);
}

TEST(PowerTrace, JoulesBetweenMatchesAccountant) {
  Fixture f;
  f.run_square_wave();
  const double j = f.trace.joules_between(SimTime::origin(), f.sim.now());
  EXPECT_NEAR(j, f.acct.component_joules(f.id), 1e-12);
  EXPECT_NEAR(j, 3.0 * 0.030, 1e-12);  // 3 on-pulses of 10 ms at 3 W
}

TEST(PowerTrace, JoulesBetweenClipsToWindow) {
  Fixture f;
  f.run_square_wave();
  // Window covering half of the first pulse.
  const double j =
      f.trace.joules_between(SimTime::origin(), SimTime::origin() + Duration::ms(5));
  EXPECT_NEAR(j, 3.0 * 0.005, 1e-12);
}

TEST(PowerTrace, SampleQuantisesAtPeriod) {
  Fixture f;
  f.run_square_wave();
  const auto samples =
      f.trace.sample(SimTime::origin(), f.sim.now(), Duration::ms(10));
  ASSERT_EQ(samples.size(), 6u);
  EXPECT_DOUBLE_EQ(samples[0].watts, 3.0);
  EXPECT_DOUBLE_EQ(samples[1].watts, 0.0);
  EXPECT_DOUBLE_EQ(samples[2].watts, 3.0);
}

TEST(PowerTrace, TimelineRendersRows) {
  Fixture f;
  f.run_square_wave();
  const std::string art = f.trace.render_timeline(SimTime::origin(), f.sim.now(), 60);
  EXPECT_NE(art.find("dev"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // active periods visible
}


TEST(PowerTrace, ComponentJoulesBetween) {
  Fixture f;
  f.run_square_wave();
  const double j = f.trace.component_joules_between(
      f.id, SimTime::origin(), SimTime::origin() + Duration::ms(15));
  // First pulse (10 ms at 3 W) plus 5 ms off.
  EXPECT_NEAR(j, 3.0 * 0.010, 1e-12);
}

TEST(PowerTrace, TimelineUsesColumnAverages) {
  // A 1 ms spike inside a 100 ms window must still darken its column when
  // columns are 10 ms wide (instantaneous sampling would miss it).
  Fixture f;
  auto proc = [&]() -> sim::Task<void> {
    co_await sim::Delay{Duration::ms(42)};
    f.psm.set(1, Routine::kComputation);
    co_await sim::Delay{Duration::ms(1)};
    f.psm.set(0, Routine::kIdle);
    co_await sim::Delay{Duration::ms(57)};
    f.psm.flush();
  };
  f.sim.spawn(proc());
  f.sim.run();
  const std::string art =
      f.trace.render_timeline(SimTime::origin(), f.sim.now(), 10);
  // The row must contain at least one non-space glyph.
  const auto row_start = art.find('|');
  const auto row_end = art.find('|', row_start + 1);
  const std::string row = art.substr(row_start + 1, row_end - row_start - 1);
  EXPECT_NE(row.find_first_not_of(' '), std::string::npos) << art;
}

TEST(PowerTrace, CsvContainsHeaderAndRows) {
  Fixture f;
  f.run_square_wave();
  std::ostringstream os;
  f.trace.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("component,routine,begin_s,end_s,watts,busy"), std::string::npos);
  EXPECT_NE(csv.find("dev,Computation"), std::string::npos);
}

}  // namespace
}  // namespace iotsim::trace
