#include <gtest/gtest.h>

#include <sstream>

#include "trace/ascii_chart.h"
#include "trace/csv_writer.h"
#include "trace/table_printer.h"

namespace iotsim::trace {
namespace {

TEST(BarChart, RendersAllLabelsAndScales) {
  BarChart chart{"mJ"};
  chart.add("Baseline", 100.0);
  chart.add("Batching", 48.0);
  chart.add("COM", 15.0);
  const std::string out = chart.render(50);
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("Batching"), std::string::npos);
  EXPECT_NE(out.find("COM"), std::string::npos);
  EXPECT_NE(out.find("mJ"), std::string::npos);
  // The largest bar reaches full width.
  EXPECT_NE(out.find(std::string(50, '#')), std::string::npos);
}

TEST(BarChart, ZeroValuesRenderEmptyBars) {
  BarChart chart;
  chart.add("a", 0.0);
  chart.add("b", 0.0);
  EXPECT_FALSE(chart.render(10).empty());
}

TEST(StackedBarChart, LegendAndTotals) {
  StackedBarChart chart{{"DataCollection", "Interrupt", "DataTransfer", "Computing"}};
  chart.add("Baseline", {6, 16, 77, 1});
  chart.add("Batching", {6, 3, 27, 1});
  const std::string out = chart.render(60);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("DataTransfer"), std::string::npos);
  EXPECT_NE(out.find("Baseline"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);  // total of first bar
  EXPECT_NE(out.find("37"), std::string::npos);   // total of second bar
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t{{"App", "Energy (mJ)", "Savings"}};
  t.add_row({"A2", "1902", "52%"});
  t.add_row({"A4", "9071", "85%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| App |"), std::string::npos);
  EXPECT_NE(out.find("1902"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TablePrinter, NumAndPctFormatters) {
  EXPECT_EQ(TablePrinter::num(1.23456, 3), "1.23");
  EXPECT_EQ(TablePrinter::pct(0.5234), "52.3%");
  EXPECT_EQ(TablePrinter::pct(0.5234, 0), "52%");
}

TEST(CsvWriter, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  CsvWriter w{{"app", "scheme", "joules"}};
  w.add_row({"A2", "baseline", "1.9"});
  w.add_row({"A2", "com", "0.55"});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "app,scheme,joules\nA2,baseline,1.9\nA2,com,0.55\n");
}

}  // namespace
}  // namespace iotsim::trace
