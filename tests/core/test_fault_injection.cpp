// §II-B Task I fault injection: sensor availability checks fail with some
// probability; the driver retries. The sample stream must stay complete
// and QoS must degrade gracefully, not collapse.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

ScenarioResult run_with_faults(double prob, Scheme scheme = Scheme::kBaseline) {
  Scenario sc;
  sc.app_ids = {AppId::kA2StepCounter};
  sc.scheme = scheme;
  sc.windows = 2;
  sc.world.sensor_fault_prob = prob;
  return run_scenario(sc);
}

TEST(FaultInjection, NoFaultsByDefault) {
  const auto r = run_with_faults(0.0);
  EXPECT_EQ(r.sensor_read_errors, 0u);
}

TEST(FaultInjection, ErrorsCountedNearExpectedRate) {
  const auto r = run_with_faults(0.05);
  // 2000 samples at 5% first-attempt failure ⇒ ~100 errors (retries can
  // fail too, adding a few more).
  EXPECT_GT(r.sensor_read_errors, 60u);
  EXPECT_LT(r.sensor_read_errors, 180u);
}

TEST(FaultInjection, SampleStreamStaysComplete) {
  const auto r = run_with_faults(0.10);
  // Retries always deliver: every window still collects its 1000 samples
  // (the kernel reports a sane step count, not "no samples").
  for (const auto& rec : r.apps.at(AppId::kA2StepCounter).records) {
    EXPECT_NE(rec.summary, "no samples");
  }
  EXPECT_TRUE(r.qos_met) << r.qos_summary;
}

TEST(FaultInjection, EnergyOverheadGrowsWithFaultRate) {
  const double clean = run_with_faults(0.0).total_joules();
  const double faulty = run_with_faults(0.20).total_joules();
  EXPECT_GT(faulty, clean);
  // Retries cost microseconds each; the overhead must stay modest.
  EXPECT_LT(faulty, clean * 1.10);
}

TEST(FaultInjection, WorksUnderEveryScheme) {
  for (Scheme scheme : {Scheme::kBaseline, Scheme::kBatching, Scheme::kCom}) {
    const auto r = run_with_faults(0.05, scheme);
    EXPECT_GT(r.sensor_read_errors, 0u) << to_string(scheme);
    EXPECT_TRUE(r.qos_met) << to_string(scheme) << "\n" << r.qos_summary;
  }
}

TEST(FaultInjection, Deterministic) {
  const auto a = run_with_faults(0.07);
  const auto b = run_with_faults(0.07);
  EXPECT_EQ(a.sensor_read_errors, b.sensor_read_errors);
  EXPECT_DOUBLE_EQ(a.total_joules(), b.total_joules());
}

}  // namespace
}  // namespace iotsim::core
