// Tier-2 fleet soaks (ctest label `tier2`): hundreds of hubs through the
// lazily materialized sharded kernel, with and without a windowed shared
// AP. These runs take seconds each — long for the tier-1 inner loop, short
// enough to gate a merge — and pin the contracts the 10k-hub CI smoke
// relies on: byte-identity across execution shapes and count-compressed
// specs desugaring exactly like hand-expanded ones.
#include <gtest/gtest.h>

#include <string>

#include "core/result_json.h"
#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

/// `hubs` hubs from three count-compressed templates — the compact spec
/// shape the fleet benches use, exercising FleetView's prefix-sum lookup.
Scenario compressed_fleet(int hubs, sim::Duration reservation_window = sim::Duration::zero()) {
  const std::vector<std::vector<AppId>> mixes = {
      {AppId::kA2StepCounter, AppId::kA8Heartbeat},
      {AppId::kA5Blynk, AppId::kA7Earthquake},
      {AppId::kA3ArduinoJson, AppId::kA4M2x},
  };
  auto builder = Scenario::builder().scheme(Scheme::kBcom).windows(1).seed(17);
  const int per = hubs / 3;
  builder.add_hub(hw::default_hub_spec(), mixes[0], per);
  builder.add_hub(hw::default_hub_spec(), mixes[1], per);
  builder.add_hub(hw::default_hub_spec(), mixes[2], hubs - 2 * per);
  if (reservation_window > sim::Duration::zero()) {
    net::ApConfig ap;
    ap.bytes_per_second = 6.25e5;
    ap.backoff = net::BackoffPolicy::kFifo;
    ap.reservation_window = reservation_window;
    builder.network(ap);
  }
  return builder.build();
}

TEST(FleetTier2, LargeIdealFleetShardsByteIdentically) {
  const Scenario sc = compressed_fleet(256);
  const std::string single = to_json_text(run_scenario(sc));
  for (int shards : {4, 7}) {
    EXPECT_EQ(single, to_json_text(run_scenario(sc, ExecPolicy{.shards = shards})))
        << "shards=" << shards;
  }
}

TEST(FleetTier2, LargeWindowedSharedApFleetShardsByteIdentically) {
  const Scenario sc = compressed_fleet(96, sim::Duration::ms(10));
  const auto single = run_scenario(sc);
  ASSERT_TRUE(single.ok());
  // The shared channel must actually be contended, or the windowed
  // arbitration under test never takes a non-trivial branch.
  EXPECT_GT(single.energy.congestion().airtime_wait, sim::Duration::zero());
  const auto sharded = run_scenario(sc, ExecPolicy{.shards = 4});
  EXPECT_EQ(to_json_text(single), to_json_text(sharded));
  EXPECT_EQ(sharded.energy.kernel().shards, 4);
}

TEST(FleetTier2, CompressedSpecMatchesHandExpandedFleet) {
  // One template with count=60 must serialize exactly like sixty add_hub
  // calls: lazy materialization is a storage change, not a result change.
  const std::vector<AppId> mix = {AppId::kA2StepCounter, AppId::kA5Blynk};
  auto compressed = Scenario::builder().scheme(Scheme::kBcom).windows(1).seed(5);
  compressed.add_hub(hw::default_hub_spec(), mix, 60);
  auto expanded = Scenario::builder().scheme(Scheme::kBcom).windows(1).seed(5);
  for (int i = 0; i < 60; ++i) expanded.add_hub(hw::default_hub_spec(), mix);
  EXPECT_EQ(to_json_text(run_scenario(compressed.build())),
            to_json_text(run_scenario(expanded.build())));
}

}  // namespace
}  // namespace iotsim::core
