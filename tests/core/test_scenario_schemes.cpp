// End-to-end scheme behaviour on the full simulated hub — the paper's
// qualitative claims as assertions.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

ScenarioResult run(std::vector<AppId> ids, Scheme scheme, int windows = 3) {
  return run_scenario(
      Scenario::builder().apps(std::move(ids)).scheme(scheme).windows(windows).build());
}

TEST(Schemes, BaselineInterruptsPerSample) {
  const auto r = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  // 1000 samples per window × 3 windows.
  EXPECT_EQ(r.interrupts_raised, 3000u);
  EXPECT_TRUE(r.qos_met) << r.qos_summary;
}

TEST(Schemes, BatchingOneInterruptPerWindow) {
  const auto r = run({AppId::kA2StepCounter}, Scheme::kBatching);
  EXPECT_EQ(r.interrupts_raised, 3u);  // the paper's 1000 → 1
  EXPECT_TRUE(r.qos_met) << r.qos_summary;
}

TEST(Schemes, BatchingSavesEnergyInPaperRange) {
  const auto base = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  const auto batch = run({AppId::kA2StepCounter}, Scheme::kBatching);
  const double savings = batch.energy.savings_vs(base.energy);
  // Paper: 52% average, 63% for the step counter; require the right regime.
  EXPECT_GT(savings, 0.40);
  EXPECT_LT(savings, 0.75);
}

TEST(Schemes, ComEliminatesDataTransfer) {
  const auto com = run({AppId::kA2StepCounter}, Scheme::kCom);
  EXPECT_NEAR(com.energy.paper_joules(energy::Routine::kDataTransfer), 0.0, 1e-9);
  EXPECT_TRUE(com.qos_met) << com.qos_summary;
  EXPECT_EQ(com.apps.at(AppId::kA2StepCounter).mode, AppMode::kOffloaded);
}

TEST(Schemes, ComBeatsBatchingBeatsBaseline) {
  const auto base = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  const auto batch = run({AppId::kA2StepCounter}, Scheme::kBatching);
  const auto com = run({AppId::kA2StepCounter}, Scheme::kCom);
  EXPECT_LT(com.total_joules(), batch.total_joules());
  EXPECT_LT(batch.total_joules(), base.total_joules());
}

TEST(Schemes, AppOutputsEquivalentAcrossSchemes) {
  // The optimisations must not change the user-level results. Sample
  // *timestamps* differ slightly between schemes (the baseline handshake
  // shifts reads by a fraction of a millisecond), so boundary-riding peaks
  // may move by one window — totals must agree and per-window counts stay
  // within one step.
  const auto base = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  const auto batch = run({AppId::kA2StepCounter}, Scheme::kBatching);
  const auto com = run({AppId::kA2StepCounter}, Scheme::kCom);
  double base_total = 0.0, batch_total = 0.0, com_total = 0.0;
  for (int w = 0; w < 3; ++w) {
    const auto& b = base.apps.at(AppId::kA2StepCounter).records[static_cast<std::size_t>(w)];
    const auto& t = batch.apps.at(AppId::kA2StepCounter).records[static_cast<std::size_t>(w)];
    const auto& c = com.apps.at(AppId::kA2StepCounter).records[static_cast<std::size_t>(w)];
    EXPECT_NEAR(b.metric, t.metric, 1.0) << "window " << w;
    EXPECT_NEAR(b.metric, c.metric, 1.0) << "window " << w;
    base_total += b.metric;
    batch_total += t.metric;
    com_total += c.metric;
  }
  EXPECT_NEAR(base_total, batch_total, 1.0);
  EXPECT_NEAR(base_total, com_total, 1.0);
}

TEST(Schemes, ComFallsBackToBaselineForHeavyApp) {
  const auto r = run({AppId::kA11SpeechToText}, Scheme::kCom);
  EXPECT_EQ(r.apps.at(AppId::kA11SpeechToText).mode, AppMode::kPerSample);
  EXPECT_FALSE(r.plan.offloaded(AppId::kA11SpeechToText));
}

TEST(Schemes, BcomSplitsHeavyAndLight) {
  const auto r = run({AppId::kA11SpeechToText, AppId::kA6Dropbox}, Scheme::kBcom);
  EXPECT_EQ(r.apps.at(AppId::kA11SpeechToText).mode, AppMode::kBatched);
  EXPECT_EQ(r.apps.at(AppId::kA6Dropbox).mode, AppMode::kOffloaded);
}

TEST(Schemes, BeamDeduplicatesSharedSensor) {
  // A2 and A7 share the accelerometer at the same rate.
  const auto base = run({AppId::kA2StepCounter, AppId::kA7Earthquake}, Scheme::kBaseline);
  const auto beam = run({AppId::kA2StepCounter, AppId::kA7Earthquake}, Scheme::kBeam);
  EXPECT_EQ(base.interrupts_raised, 6000u);
  EXPECT_EQ(beam.interrupts_raised, 3000u);  // one stream instead of two
  EXPECT_LT(beam.total_joules(), base.total_joules());
}

TEST(Schemes, BeamNoSharingNoBenefit) {
  // Property 8 of DESIGN.md: disjoint sensor sets ⇒ BEAM ≡ Baseline.
  const auto base = run({AppId::kA2StepCounter, AppId::kA8Heartbeat}, Scheme::kBaseline);
  const auto beam = run({AppId::kA2StepCounter, AppId::kA8Heartbeat}, Scheme::kBeam);
  EXPECT_EQ(base.interrupts_raised, beam.interrupts_raised);
  EXPECT_NEAR(beam.total_joules(), base.total_joules(),
              base.total_joules() * 0.01);
}

TEST(Schemes, BeamAppsBothReceiveSharedData) {
  const auto beam = run({AppId::kA2StepCounter, AppId::kA7Earthquake}, Scheme::kBeam);
  for (auto id : {AppId::kA2StepCounter, AppId::kA7Earthquake}) {
    for (const auto& rec : beam.apps.at(id).records) {
      EXPECT_FALSE(rec.summary.empty()) << apps::code_of(id);
      EXPECT_NE(rec.summary, "no samples") << apps::code_of(id);
    }
  }
}

TEST(Schemes, OffloadedCloudAppUsesMcuRadio) {
  Scenario sc;
  sc.app_ids = {AppId::kA4M2x};
  sc.scheme = Scheme::kCom;
  sc.windows = 2;
  sc.record_power_trace = true;
  const auto r = run_scenario(sc);
  // Under COM the cloud session must ride the MCU NIC, not the main one.
  double main_nic_j = 0.0, mcu_nic_j = 0.0;
  for (const auto& [name, row] : r.energy.by_component()) {
    double total = 0.0;
    for (double j : row) total += j;
    if (name == "main_nic") main_nic_j = total;
    if (name == "mcu_nic") mcu_nic_j = total;
  }
  EXPECT_GT(mcu_nic_j, 0.0);
  EXPECT_NEAR(main_nic_j, 0.0, 1e-9);
}

TEST(Schemes, HeavyBaselineComputationDominates) {
  const auto r = run({AppId::kA11SpeechToText}, Scheme::kBaseline);
  const double comp = r.energy.paper_fraction(energy::Routine::kComputation);
  // Paper Fig. 12a: app-specific computing dominates (~78%); require the
  // dominant-share regime.
  EXPECT_GT(comp, 0.40);
  const double dt = r.energy.paper_fraction(energy::Routine::kDataTransfer);
  EXPECT_GT(comp, dt);
}

TEST(Schemes, BatchingHelpsHeavyAppFarLess) {
  const auto base11 = run({AppId::kA11SpeechToText}, Scheme::kBaseline);
  const auto batch11 = run({AppId::kA11SpeechToText}, Scheme::kBatching);
  const auto base2 = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  const auto batch2 = run({AppId::kA2StepCounter}, Scheme::kBatching);
  // Paper Fig. 12a: 5% for A11 vs 52%+ for light apps — at least a 1.7×
  // smaller relative saving for the heavy app.
  EXPECT_LT(batch11.energy.savings_vs(base11.energy),
            batch2.energy.savings_vs(base2.energy) * 0.6);
}

}  // namespace
}  // namespace iotsim::core
