#include "core/comparison.h"

#include <gtest/gtest.h>

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario base_scenario() {
  Scenario sc;
  sc.app_ids = {AppId::kA2StepCounter};
  sc.windows = 2;
  return sc;
}

TEST(SchemeComparison, RunsAllRequestedSchemes) {
  const auto cmp = compare_schemes(base_scenario(),
                                   {Scheme::kBaseline, Scheme::kBatching, Scheme::kCom});
  EXPECT_TRUE(cmp.has(Scheme::kBaseline));
  EXPECT_TRUE(cmp.has(Scheme::kBatching));
  EXPECT_TRUE(cmp.has(Scheme::kCom));
  EXPECT_FALSE(cmp.has(Scheme::kBeam));
}

TEST(SchemeComparison, ReferenceIsFirstScheme) {
  const auto cmp = compare_schemes(base_scenario(), {Scheme::kBaseline, Scheme::kCom});
  EXPECT_DOUBLE_EQ(cmp.savings(Scheme::kBaseline), 0.0);
  EXPECT_DOUBLE_EQ(cmp.normalized(Scheme::kBaseline), 1.0);
  EXPECT_GT(cmp.savings(Scheme::kCom), 0.5);
  EXPECT_LT(cmp.normalized(Scheme::kCom), 0.5);
}

TEST(SchemeComparison, RoutineSharesSumBelowOne) {
  const auto cmp = compare_schemes(base_scenario(), {Scheme::kBaseline, Scheme::kBatching});
  double sum = 0.0;
  for (auto r : energy::kPaperRoutines) sum += cmp.routine_share(Scheme::kBatching, r);
  EXPECT_GT(sum, 0.0);
  EXPECT_LT(sum, cmp.normalized(Scheme::kBatching) + 1e-9);  // idle excluded
}

TEST(SchemeComparison, SpeedupMatchesManualRatio) {
  const auto cmp = compare_schemes(base_scenario(), {Scheme::kBaseline, Scheme::kCom});
  const double manual =
      cmp.result(Scheme::kBaseline).apps.at(AppId::kA2StepCounter).busy_per_window.total().to_seconds() /
      cmp.result(Scheme::kCom).apps.at(AppId::kA2StepCounter).busy_per_window.total().to_seconds();
  EXPECT_DOUBLE_EQ(cmp.speedup(Scheme::kCom, AppId::kA2StepCounter), manual);
  EXPECT_GT(manual, 1.0);
}

TEST(SchemeComparison, TableRendersEveryScheme) {
  const auto cmp = compare_schemes(base_scenario(),
                                   {Scheme::kBaseline, Scheme::kBatching, Scheme::kCom});
  const std::string table = cmp.render_table();
  EXPECT_NE(table.find("Baseline"), std::string::npos);
  EXPECT_NE(table.find("Batching"), std::string::npos);
  EXPECT_NE(table.find("COM"), std::string::npos);
  EXPECT_NE(table.find("met"), std::string::npos);
}

}  // namespace
}  // namespace iotsim::core
