#include "core/qos.h"

#include <gtest/gtest.h>

namespace iotsim::core {
namespace {

using apps::AppId;
using sim::Duration;
using sim::SimTime;

TEST(QosChecker, OnTimeWindowsPass) {
  QosChecker qos;
  const auto start = SimTime::origin();
  qos.record_window(AppId::kA2StepCounter, start, start + Duration::ms(1002));
  qos.record_window(AppId::kA2StepCounter, start + Duration::sec(1),
                    start + Duration::ms(2003));
  EXPECT_TRUE(qos.all_met());
  EXPECT_EQ(qos.of(AppId::kA2StepCounter).windows, 2u);
  EXPECT_EQ(qos.of(AppId::kA2StepCounter).deadline_misses, 0u);
}

TEST(QosChecker, LateWindowCountsAsMiss) {
  QosChecker qos;
  const auto start = SimTime::origin();
  // Deadline = 2.5 × 1 s window.
  qos.record_window(AppId::kA2StepCounter, start, start + Duration::ms(2600));
  EXPECT_FALSE(qos.all_met());
  EXPECT_EQ(qos.of(AppId::kA2StepCounter).deadline_misses, 1u);
}

TEST(QosChecker, LatencyStatistics) {
  QosChecker qos;
  const auto start = SimTime::origin();
  qos.record_window(AppId::kA3ArduinoJson, start, start + Duration::ms(1000));
  qos.record_window(AppId::kA3ArduinoJson, start, start + Duration::ms(2000));
  const auto& s = qos.of(AppId::kA3ArduinoJson);
  EXPECT_EQ(s.mean_latency(), Duration::ms(1500));
  EXPECT_EQ(s.worst_latency, Duration::ms(2000));
}

TEST(QosChecker, JitterTracksWorstCase) {
  QosChecker qos;
  qos.record_sample_jitter(AppId::kA4M2x, Duration::us(120));
  qos.record_sample_jitter(AppId::kA4M2x, Duration::us(900));
  qos.record_sample_jitter(AppId::kA4M2x, Duration::us(300));
  EXPECT_EQ(qos.of(AppId::kA4M2x).worst_sample_jitter, Duration::us(900));
}

TEST(QosChecker, UnknownAppIsEmpty) {
  QosChecker qos;
  EXPECT_EQ(qos.of(AppId::kA9JpegDecoder).windows, 0u);
  EXPECT_TRUE(qos.all_met());
}

TEST(QosChecker, SummaryMentionsApps) {
  QosChecker qos;
  qos.record_window(AppId::kA2StepCounter, SimTime::origin(),
                    SimTime::origin() + Duration::sec(1));
  const std::string s = qos.summary();
  EXPECT_NE(s.find("A2"), std::string::npos);
  EXPECT_NE(s.find("windows=1"), std::string::npos);
}

}  // namespace
}  // namespace iotsim::core
