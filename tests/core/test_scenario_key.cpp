// scenario_key() completeness: every field of Scenario — including the
// embedded WorldConfig, HubSpec, and the fleet HubInstance list — must feed
// the sweep memo's content hash. Each mutator below flips exactly one field
// and asserts the key changes; forgetting to extend scenario_key() when
// adding a field makes the matching case here fail (or, for a brand-new
// field, the coverage reminder in core/scenario.h applies).
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/sweep.h"

namespace iotsim::core {
namespace {

using apps::AppId;

/// A scenario with nothing at its default value, so "mutation changed the
/// key" can't be confused with "mutation restored a default".
Scenario rich_scenario() {
  sensors::WorldConfig world;
  world.quakes = {{1.0, 0.5, 2.0}};
  world.utterances = {{0.5, 3}};
  world.heart_bpm = 80.0;
  world.heart_irregular_prob = 0.1;
  world.walking_cadence_hz = 2.1;
  world.sensor_fault_prob = 0.05;

  return Scenario::builder()
      .apps({AppId::kA2StepCounter, AppId::kA7Earthquake})
      .scheme(Scheme::kCom)
      .windows(3)
      .seed(7)
      .world(world)
      .record_power_trace()
      .batch_flushes_per_window(2)
      .mcu_speed_factor(1.5)
      .build();
}

struct Mutation {
  const char* name;
  std::function<void(Scenario&)> apply;
};

/// Every scalar knob of a HubSpec, expressed as mutations of whichever
/// HubSpec the `pick` accessor selects (the legacy hub or a fleet hub).
std::vector<Mutation> hub_spec_mutations(std::function<hw::HubSpec&(Scenario&)> pick) {
  auto on = [&pick](void (*f)(hw::HubSpec&)) {
    return [pick, f](Scenario& sc) { f(pick(sc)); };
  };
  std::vector<Mutation> m;
  auto add = [&](const char* field, void (*f)(hw::HubSpec&)) {
    m.push_back({field, on(f)});
  };
  add("cpu.active_w", [](hw::HubSpec& h) { h.cpu.active_w += 0.25; });
  add("cpu.busy_w", [](hw::HubSpec& h) { h.cpu.busy_w += 0.25; });
  add("cpu.light_sleep_w", [](hw::HubSpec& h) { h.cpu.light_sleep_w += 0.25; });
  add("cpu.deep_sleep_w", [](hw::HubSpec& h) { h.cpu.deep_sleep_w += 0.25; });
  add("cpu.transition_w", [](hw::HubSpec& h) { h.cpu.transition_w += 0.25; });
  add("cpu.light_wake_latency",
      [](hw::HubSpec& h) { h.cpu.light_wake_latency = h.cpu.light_wake_latency * 2; });
  add("cpu.deep_wake_latency",
      [](hw::HubSpec& h) { h.cpu.deep_wake_latency = h.cpu.deep_wake_latency * 2; });
  add("mcu.active_w", [](hw::HubSpec& h) { h.mcu.active_w += 0.25; });
  add("mcu.sleep_w", [](hw::HubSpec& h) { h.mcu.sleep_w += 0.25; });
  add("mcu.transition_w", [](hw::HubSpec& h) { h.mcu.transition_w += 0.25; });
  add("mcu.wake_latency", [](hw::HubSpec& h) { h.mcu.wake_latency = h.mcu.wake_latency * 2; });
  add("pio_bus.active_w", [](hw::HubSpec& h) { h.pio_bus.active_w += 0.25; });
  add("pio_bus.idle_w", [](hw::HubSpec& h) { h.pio_bus.idle_w += 0.25; });
  add("link_bus.active_w", [](hw::HubSpec& h) { h.link_bus.active_w += 0.25; });
  add("link_bus.idle_w", [](hw::HubSpec& h) { h.link_bus.idle_w += 0.25; });
  add("main_nic.tx_w", [](hw::HubSpec& h) { h.main_nic.tx_w += 0.25; });
  add("main_nic.rx_w", [](hw::HubSpec& h) { h.main_nic.rx_w += 0.25; });
  add("main_nic.idle_w", [](hw::HubSpec& h) { h.main_nic.idle_w += 0.25; });
  add("main_nic.bytes_per_second",
      [](hw::HubSpec& h) { h.main_nic.bytes_per_second *= 2.0; });
  add("main_nic.tail", [](hw::HubSpec& h) { h.main_nic.tail = h.main_nic.tail * 2; });
  add("mcu_nic.tx_w", [](hw::HubSpec& h) { h.mcu_nic.tx_w += 0.25; });
  add("mcu_nic.rx_w", [](hw::HubSpec& h) { h.mcu_nic.rx_w += 0.25; });
  add("mcu_nic.idle_w", [](hw::HubSpec& h) { h.mcu_nic.idle_w += 0.25; });
  add("mcu_nic.bytes_per_second",
      [](hw::HubSpec& h) { h.mcu_nic.bytes_per_second *= 2.0; });
  add("mcu_nic.tail", [](hw::HubSpec& h) { h.mcu_nic.tail = h.mcu_nic.tail * 2; });
  add("main_board_base_w", [](hw::HubSpec& h) { h.main_board_base_w += 0.25; });
  add("mcu_board_base_w", [](hw::HubSpec& h) { h.mcu_board_base_w += 0.25; });
  add("dma_enabled", [](hw::HubSpec& h) { h.dma_enabled = !h.dma_enabled; });
  add("dma_setup", [](hw::HubSpec& h) { h.dma_setup = h.dma_setup + sim::Duration::from_us(5); });
  add("transfer_fixed_overhead", [](hw::HubSpec& h) {
    h.transfer_fixed_overhead = h.transfer_fixed_overhead + sim::Duration::from_us(5);
  });
  add("transfer_per_byte", [](hw::HubSpec& h) {
    h.transfer_per_byte = h.transfer_per_byte + sim::Duration::from_us(1);
  });
  add("interrupt_raise", [](hw::HubSpec& h) {
    h.interrupt_raise = h.interrupt_raise + sim::Duration::from_us(5);
  });
  add("interrupt_dispatch", [](hw::HubSpec& h) {
    h.interrupt_dispatch = h.interrupt_dispatch + sim::Duration::from_us(5);
  });
  add("mcu_ram_bytes", [](hw::HubSpec& h) { h.mcu_ram_bytes += 1024; });
  add("mcu_firmware_reserved", [](hw::HubSpec& h) { h.mcu_firmware_reserved += 1024; });
  add("mcu_buffer_store", [](hw::HubSpec& h) {
    h.mcu_buffer_store = h.mcu_buffer_store + sim::Duration::from_us(5);
  });
  add("cpu_nominal_mips", [](hw::HubSpec& h) { h.cpu_nominal_mips *= 2.0; });
  add("mcu_nominal_mips", [](hw::HubSpec& h) { h.mcu_nominal_mips *= 2.0; });
  return m;
}

/// Every mutation of a WorldConfig reached through `pick`.
std::vector<Mutation> world_mutations(std::function<sensors::WorldConfig&(Scenario&)> pick) {
  auto on = [&pick](void (*f)(sensors::WorldConfig&)) {
    return [pick, f](Scenario& sc) { f(pick(sc)); };
  };
  return {
      {"quakes.size", on([](sensors::WorldConfig& w) { w.quakes.push_back({2.0, 0.1, 1.0}); })},
      {"quakes.start_s", on([](sensors::WorldConfig& w) { w.quakes[0].start_s += 0.5; })},
      {"quakes.duration_s", on([](sensors::WorldConfig& w) { w.quakes[0].duration_s += 0.1; })},
      {"quakes.magnitude", on([](sensors::WorldConfig& w) { w.quakes[0].magnitude += 0.5; })},
      {"utterances.size",
       on([](sensors::WorldConfig& w) { w.utterances.push_back({1.5, 1}); })},
      {"utterances.start_s", on([](sensors::WorldConfig& w) { w.utterances[0].start_s += 0.2; })},
      {"utterances.word_id", on([](sensors::WorldConfig& w) { w.utterances[0].word_id += 1; })},
      {"heart_bpm", on([](sensors::WorldConfig& w) { w.heart_bpm += 5.0; })},
      {"heart_irregular_prob",
       on([](sensors::WorldConfig& w) { w.heart_irregular_prob += 0.1; })},
      {"walking_cadence_hz", on([](sensors::WorldConfig& w) { w.walking_cadence_hz += 0.3; })},
      {"sensor_fault_prob", on([](sensors::WorldConfig& w) { w.sensor_fault_prob += 0.02; })},
  };
}

/// Every field of an EnvironmentConfig reached through `pick`, each away
/// from its default in the base scenario so no mutation restores a default.
std::vector<Mutation> environment_mutations(
    std::function<env::EnvironmentConfig&(Scenario&)> pick) {
  auto on = [&pick](void (*f)(env::EnvironmentConfig&)) {
    return [pick, f](Scenario& sc) { f(pick(sc)); };
  };
  return {
      {"faults.model",
       on([](env::EnvironmentConfig& e) { e.faults.model = env::FaultModel::kDegrading; })},
      {"faults.fault_prob", on([](env::EnvironmentConfig& e) { e.faults.fault_prob += 0.01; })},
      {"faults.burst_enter_prob",
       on([](env::EnvironmentConfig& e) { e.faults.burst_enter_prob += 0.01; })},
      {"faults.burst_exit_prob",
       on([](env::EnvironmentConfig& e) { e.faults.burst_exit_prob += 0.05; })},
      {"faults.good_fault_prob",
       on([](env::EnvironmentConfig& e) { e.faults.good_fault_prob += 0.01; })},
      {"faults.burst_fault_prob",
       on([](env::EnvironmentConfig& e) { e.faults.burst_fault_prob -= 0.1; })},
      {"faults.degrade_per_hour",
       on([](env::EnvironmentConfig& e) { e.faults.degrade_per_hour += 0.02; })},
      {"faults.degrade_cap", on([](env::EnvironmentConfig& e) { e.faults.degrade_cap -= 0.1; })},
      {"crash.crash_prob_per_window",
       on([](env::EnvironmentConfig& e) { e.crash.crash_prob_per_window += 0.01; })},
      {"crash.reboot_windows",
       on([](env::EnvironmentConfig& e) { e.crash.reboot_windows += 1; })},
      {"power.model",
       on([](env::EnvironmentConfig& e) { e.power.model = env::PowerModel::kBattery; })},
      {"power.battery_capacity_wh",
       on([](env::EnvironmentConfig& e) { e.power.battery_capacity_wh += 0.5; })},
      {"power.battery_usable_fraction",
       on([](env::EnvironmentConfig& e) { e.power.battery_usable_fraction -= 0.1; })},
      {"power.initial_soc", on([](env::EnvironmentConfig& e) { e.power.initial_soc -= 0.1; })},
      {"power.resume_soc", on([](env::EnvironmentConfig& e) { e.power.resume_soc += 0.05; })},
      {"power.harvest.peak_w",
       on([](env::EnvironmentConfig& e) { e.power.harvest.peak_w += 0.1; })},
      {"power.harvest.period_s",
       on([](env::EnvironmentConfig& e) { e.power.harvest.period_s += 1.0; })},
      {"power.harvest.duty", on([](env::EnvironmentConfig& e) { e.power.harvest.duty -= 0.2; })},
      {"power.harvest.phase_s",
       on([](env::EnvironmentConfig& e) { e.power.harvest.phase_s += 0.5; })},
  };
}

/// An environment with every optional knob away from its default.
env::EnvironmentConfig rich_environment() {
  env::EnvironmentConfig e;
  e.faults.model = env::FaultModel::kGilbertElliott;
  e.faults.fault_prob = 0.03;
  e.faults.burst_enter_prob = 0.02;
  e.faults.burst_exit_prob = 0.3;
  e.faults.good_fault_prob = 0.01;
  e.faults.burst_fault_prob = 0.8;
  e.faults.degrade_per_hour = 0.05;
  e.faults.degrade_cap = 0.4;
  e.crash.crash_prob_per_window = 0.05;
  e.crash.reboot_windows = 2;
  e.power.model = env::PowerModel::kHarvesting;
  e.power.battery_capacity_wh = 2.0;
  e.power.battery_usable_fraction = 0.8;
  e.power.initial_soc = 0.9;
  e.power.resume_soc = 0.2;
  e.power.harvest.peak_w = 0.5;
  e.power.harvest.period_s = 10.0;
  e.power.harvest.duty = 0.5;
  e.power.harvest.phase_s = 1.0;
  return e;
}

void expect_all_change_key(const Scenario& base, const std::vector<Mutation>& mutations,
                           const std::string& label) {
  const std::string base_key = scenario_key(base);
  for (std::size_t i = 0; i < mutations.size(); ++i) {
    Scenario mutated = base;
    mutations[i].apply(mutated);
    EXPECT_NE(scenario_key(mutated), base_key)
        << label << " mutation #" << i
        << (mutations[i].name ? std::string{" ("} + mutations[i].name + ")" : std::string{})
        << " did not change the memo key";
  }
}

TEST(ScenarioKey, TopLevelFieldsAllFeedTheKey) {
  const std::vector<Mutation> mutations = {
      {"app_ids", [](Scenario& sc) { sc.app_ids.push_back(AppId::kA5Blynk); }},
      {"app_ids order",
       [](Scenario& sc) { std::swap(sc.app_ids[0], sc.app_ids[1]); }},
      {"scheme", [](Scenario& sc) { sc.scheme = Scheme::kBcom; }},
      {"windows", [](Scenario& sc) { sc.windows += 1; }},
      {"seed", [](Scenario& sc) { sc.seed += 1; }},
      {"record_power_trace", [](Scenario& sc) { sc.record_power_trace = false; }},
      {"batch_flushes_per_window", [](Scenario& sc) { sc.batch_flushes_per_window += 1; }},
      {"mcu_speed_factor", [](Scenario& sc) { sc.mcu_speed_factor += 0.5; }},
  };
  expect_all_change_key(rich_scenario(), mutations, "Scenario");
}

TEST(ScenarioKey, WorldConfigFieldsAllFeedTheKey) {
  expect_all_change_key(rich_scenario(),
                        world_mutations([](Scenario& sc) -> sensors::WorldConfig& {
                          return sc.world;
                        }),
                        "WorldConfig");
}

TEST(ScenarioKey, HubSpecFieldsAllFeedTheKey) {
  expect_all_change_key(rich_scenario(),
                        hub_spec_mutations([](Scenario& sc) -> hw::HubSpec& { return sc.hub; }),
                        "HubSpec");
}

/// A fleet scenario exercising the hubs[] section of the key.
Scenario fleet_scenario() {
  sensors::WorldConfig override_world;
  override_world.heart_bpm = 95.0;
  override_world.quakes = {{1.0, 0.5, 2.0}};
  override_world.utterances = {{0.5, 3}};
  HubInstance a;
  a.app_ids = {AppId::kA2StepCounter};
  a.world = override_world;
  a.count = 2;
  HubInstance b;
  b.app_ids = {AppId::kA5Blynk};
  return Scenario::builder().windows(3).add_hub(a).add_hub(b).build();
}

TEST(ScenarioKey, HubInstanceFieldsAllFeedTheKey) {
  const std::vector<Mutation> mutations = {
      {"hubs.size",
       [](Scenario& sc) { sc.hubs.push_back(sc.hubs.back()); }},
      {"hubs[0].app_ids",
       [](Scenario& sc) { sc.hubs[0].app_ids.push_back(AppId::kA7Earthquake); }},
      {"hubs[0].count", [](Scenario& sc) { sc.hubs[0].count += 1; }},
      {"hubs[0].world presence", [](Scenario& sc) { sc.hubs[0].world.reset(); }},
      {"hubs[1].world presence",
       [](Scenario& sc) { sc.hubs[1].world = sensors::WorldConfig{}; }},
      {"hubs[0].world content",
       [](Scenario& sc) { sc.hubs[0].world->heart_bpm += 5.0; }},
      {"hubs order", [](Scenario& sc) { std::swap(sc.hubs[0], sc.hubs[1]); }},
  };
  expect_all_change_key(fleet_scenario(), mutations, "HubInstance");
}

TEST(ScenarioKey, FleetHubSpecFieldsAllFeedTheKey) {
  expect_all_change_key(fleet_scenario(),
                        hub_spec_mutations(
                            [](Scenario& sc) -> hw::HubSpec& { return sc.hubs[0].hub; }),
                        "fleet HubSpec");
}

TEST(ScenarioKey, FleetWorldOverrideFieldsAllFeedTheKey) {
  expect_all_change_key(fleet_scenario(),
                        world_mutations([](Scenario& sc) -> sensors::WorldConfig& {
                          return *sc.hubs[0].world;
                        }),
                        "fleet WorldConfig");
}

/// Network-attached variant: exercises the optional ApConfig section with
/// every field away from its default.
Scenario networked_scenario() {
  Scenario sc = rich_scenario();
  net::ApConfig ap;
  ap.bytes_per_second = 6.25e5;
  ap.queue_depth = 16;
  ap.backoff = net::BackoffPolicy::kCsma;
  ap.backoff_slot = sim::Duration::from_us(250.0);
  ap.max_backoff_exponent = 5;
  ap.reservation_window = sim::Duration::ms(10);
  sc.network = ap;
  return sc;
}

TEST(ScenarioKey, NetworkConfigFieldsAllFeedTheKey) {
  const std::vector<Mutation> mutations = {
      {"network presence", [](Scenario& sc) { sc.network.reset(); }},
      {"network.bytes_per_second",
       [](Scenario& sc) { sc.network->bytes_per_second *= 2.0; }},
      {"network.queue_depth", [](Scenario& sc) { sc.network->queue_depth += 1; }},
      {"network.backoff",
       [](Scenario& sc) { sc.network->backoff = net::BackoffPolicy::kFifo; }},
      {"network.backoff_slot",
       [](Scenario& sc) { sc.network->backoff_slot = sc.network->backoff_slot * 2; }},
      {"network.max_backoff_exponent",
       [](Scenario& sc) { sc.network->max_backoff_exponent += 1; }},
      {"network.reservation_window",
       [](Scenario& sc) { sc.network->reservation_window = sc.network->reservation_window * 2; }},
  };
  expect_all_change_key(networked_scenario(), mutations, "ApConfig");
}

TEST(ScenarioKey, ScenarioEnvironmentFieldsAllFeedTheKey) {
  Scenario base = rich_scenario();
  base.environment = rich_environment();
  std::vector<Mutation> mutations = environment_mutations(
      [](Scenario& sc) -> env::EnvironmentConfig& { return *sc.environment; });
  mutations.push_back({"environment presence", [](Scenario& sc) { sc.environment.reset(); }});
  expect_all_change_key(base, mutations, "Scenario environment");
}

TEST(ScenarioKey, HubInstanceEnvironmentFieldsAllFeedTheKey) {
  Scenario base = fleet_scenario();
  base.hubs[0].environment = rich_environment();
  std::vector<Mutation> mutations = environment_mutations(
      [](Scenario& sc) -> env::EnvironmentConfig& { return *sc.hubs[0].environment; });
  mutations.push_back(
      {"hubs[0].environment presence", [](Scenario& sc) { sc.hubs[0].environment.reset(); }});
  mutations.push_back({"hubs[1].environment presence", [](Scenario& sc) {
                         sc.hubs[1].environment = env::EnvironmentConfig{};
                       }});
  expect_all_change_key(base, mutations, "HubInstance environment");
}

TEST(ScenarioKey, LegacyAndEquivalentFleetScenarioKeysDiffer) {
  // The one-hub fleet desugars to the same simulation, but the memo must
  // still distinguish the spellings: their results differ in shape
  // (component scoping, hub sections).
  const auto legacy = Scenario::builder().apps({AppId::kA2StepCounter}).build();
  const auto fleet =
      Scenario::builder().add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter}).build();
  EXPECT_NE(scenario_key(legacy), scenario_key(fleet));
}

TEST(ScenarioKey, IdenticalScenariosShareAKey) {
  EXPECT_EQ(scenario_key(rich_scenario()), scenario_key(rich_scenario()));
  EXPECT_EQ(scenario_key(fleet_scenario()), scenario_key(fleet_scenario()));
  EXPECT_EQ(scenario_key(networked_scenario()), scenario_key(networked_scenario()));
}

}  // namespace
}  // namespace iotsim::core
