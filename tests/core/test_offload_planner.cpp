#include "core/offload_planner.h"

#include <gtest/gtest.h>

namespace iotsim::core {
namespace {

using apps::AppId;

TEST(OffloadPlanner, AllLightweightAppsFitIndividually) {
  OffloadPlanner planner{hw::default_hub_spec()};
  for (auto id : apps::kLightweightApps) {
    const auto plan = planner.plan({id});
    EXPECT_TRUE(plan.offloaded(id)) << apps::code_of(id) << ": "
                                    << plan.decisions.at(id).reason;
  }
}

TEST(OffloadPlanner, A11IsRejected) {
  OffloadPlanner planner{hw::default_hub_spec()};
  const auto plan = planner.plan({AppId::kA11SpeechToText});
  EXPECT_FALSE(plan.offloaded(AppId::kA11SpeechToText));
  EXPECT_FALSE(plan.decisions.at(AppId::kA11SpeechToText).reason.empty());
}

TEST(OffloadPlanner, Fig11FourAppComboFits) {
  // The paper's BCOM offloads A2+A4+A5+A7 together (Fig. 11).
  OffloadPlanner planner{hw::default_hub_spec()};
  const auto plan = planner.plan(
      {AppId::kA2StepCounter, AppId::kA4M2x, AppId::kA5Blynk, AppId::kA7Earthquake});
  for (auto id : {AppId::kA2StepCounter, AppId::kA4M2x, AppId::kA5Blynk, AppId::kA7Earthquake}) {
    EXPECT_TRUE(plan.offloaded(id)) << apps::code_of(id) << ": "
                                    << plan.decisions.at(id).reason;
  }
  EXPECT_LE(plan.mcu_ram_used, hw::default_hub_spec().mcu_available_ram());
}

TEST(OffloadPlanner, SharedSensorBuffersCountedOnce) {
  OffloadPlanner planner{hw::default_hub_spec()};
  // A2 and A7 both read the 12 KB/window accelerometer.
  const auto separate_a2 = planner.plan({AppId::kA2StepCounter});
  const auto separate_a7 = planner.plan({AppId::kA7Earthquake});
  const auto joint = planner.plan({AppId::kA2StepCounter, AppId::kA7Earthquake});
  EXPECT_LT(joint.mcu_ram_used, separate_a2.mcu_ram_used + separate_a7.mcu_ram_used);
}

TEST(OffloadPlanner, TinyRamRejectsEverything) {
  hw::HubSpec hub = hw::default_hub_spec();
  hub.mcu_ram_bytes = hub.mcu_firmware_reserved + 1024;  // 1 KB left
  OffloadPlanner planner{hub};
  const auto plan = planner.plan({AppId::kA2StepCounter});
  EXPECT_FALSE(plan.offloaded(AppId::kA2StepCounter));
  EXPECT_NE(plan.decisions.at(AppId::kA2StepCounter).reason.find("RAM"), std::string::npos);
}

TEST(OffloadPlanner, GreedyOrderMatters) {
  // With a constrained budget, earlier candidates win the RAM.
  hw::HubSpec hub = hw::default_hub_spec();
  hub.mcu_ram_bytes = hub.mcu_firmware_reserved + 45 * 1024;
  OffloadPlanner planner{hub};
  const auto plan = planner.plan({AppId::kA10Fingerprint, AppId::kA9JpegDecoder});
  EXPECT_TRUE(plan.offloaded(AppId::kA10Fingerprint));
  EXPECT_FALSE(plan.offloaded(AppId::kA9JpegDecoder));
}

}  // namespace
}  // namespace iotsim::core
