// Multi-hub fleet scenarios: back-compat with the single-hub path, per-hub
// result sections, seed derivation, count expansion, and fleet validation.
#include <gtest/gtest.h>

#include "core/result_json.h"
#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario single(Scheme scheme = Scheme::kCom) {
  return Scenario::builder()
      .apps({AppId::kA2StepCounter, AppId::kA7Earthquake})
      .scheme(scheme)
      .windows(2)
      .build();
}

TEST(FleetResolve, LegacyScenarioDesugarsToOneUnscopedHub) {
  const auto sc = single();
  EXPECT_FALSE(sc.multi_hub());
  EXPECT_EQ(sc.fleet_size(), 1u);

  const FleetView fleet = sc.fleet();
  ASSERT_EQ(fleet.size(), 1u);
  const HubView hub = fleet.hub(0);
  EXPECT_EQ(hub.index, 0u);
  EXPECT_EQ(hub.name, "hub0");
  EXPECT_EQ(hub.component_scope, "");  // historical flat component names
  EXPECT_EQ(hub.seed, sc.seed);
  EXPECT_EQ(hub.app_ids, &sc.app_ids);
  EXPECT_EQ(hub.world, &sc.world);
  EXPECT_EQ(hub.spec, &sc.hub);
}

TEST(FleetResolve, CountExpansionNamesHubsByFlatIndex) {
  const auto sc = Scenario::builder()
                      .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter}, 2)
                      .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
                      .build();
  EXPECT_TRUE(sc.multi_hub());
  EXPECT_EQ(sc.fleet_size(), 3u);

  const FleetView fleet = sc.fleet();
  ASSERT_EQ(fleet.size(), 3u);
  const HubView h0 = fleet.hub(0);
  const HubView h1 = fleet.hub(1);
  const HubView h2 = fleet.hub(2);
  EXPECT_EQ(h0.name, "hub0");
  EXPECT_EQ(h1.name, "hub1");
  EXPECT_EQ(h2.name, "hub2");
  EXPECT_EQ(h2.index, 2u);
  // Fleet hubs scope their accountant components by name.
  EXPECT_EQ(h1.component_scope, "hub1");
  // The two count-expanded copies share the template's spec/app list (the
  // view points into the count-compressed scenario; nothing is copied)...
  EXPECT_EQ(h0.spec, h1.spec);
  EXPECT_EQ(h0.app_ids, h1.app_ids);
  // ...but draw from distinct RNG streams.
  EXPECT_NE(h0.seed, h1.seed);
  EXPECT_NE(h1.seed, h2.seed);
}

TEST(FleetResolve, HubSeedIsIdentityAtIndexZero) {
  EXPECT_EQ(hub_seed(42, 0), 42u);
  EXPECT_NE(hub_seed(42, 1), 42u);
  EXPECT_NE(hub_seed(42, 1), hub_seed(42, 2));
}

TEST(FleetResolve, PerHubWorldOverrideAppliesOnlyToItsHub) {
  sensors::WorldConfig noisy;
  noisy.sensor_fault_prob = 0.5;
  HubInstance a;
  a.app_ids = {AppId::kA2StepCounter};
  a.world = noisy;
  HubInstance b;
  b.app_ids = {AppId::kA5Blynk};

  const auto sc = Scenario::builder().add_hub(a).add_hub(b).build();
  const FleetView fleet = sc.fleet();
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_DOUBLE_EQ(fleet.hub(0).world->sensor_fault_prob, 0.5);
  EXPECT_EQ(fleet.hub(1).world, &sc.world);  // falls back to the scenario world
}

TEST(FleetValidate, PerHubErrorsNameTheInstance) {
  HubInstance empty_apps;  // no app_ids
  HubInstance bad_count;
  bad_count.app_ids = {AppId::kA2StepCounter};
  bad_count.count = 0;
  sensors::WorldConfig bad_world;
  bad_world.sensor_fault_prob = 2.0;
  HubInstance bad_fault;
  bad_fault.app_ids = {AppId::kA5Blynk};
  bad_fault.world = bad_world;

  const auto errors = Scenario::builder()
                          .add_hub(empty_apps)
                          .add_hub(bad_count)
                          .add_hub(bad_fault)
                          .build()
                          .validate();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].field, "hubs[0].app_ids");
  EXPECT_EQ(errors[1].field, "hubs[1].count");
  EXPECT_EQ(errors[2].field, "hubs[2].world.sensor_fault_prob");
}

TEST(FleetValidate, TopLevelAppsAndFleetAreMutuallyExclusive) {
  const auto errors = Scenario::builder()
                          .apps({AppId::kA2StepCounter})
                          .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
                          .build()
                          .validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "app_ids");
}

TEST(FleetValidate, DuplicateAppsWithinOneHubAreAnError) {
  const auto errors =
      Scenario::builder()
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter, AppId::kA2StepCounter})
          .build()
          .validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "hubs[0].app_ids");
}

TEST(FleetRun, ExplicitOneHubFleetMatchesLegacyRunExactly) {
  const auto legacy = run_scenario(single());
  auto fleet_sc = Scenario::builder()
                      .scheme(Scheme::kCom)
                      .windows(2)
                      .add_hub(hw::default_hub_spec(),
                               {AppId::kA2StepCounter, AppId::kA7Earthquake})
                      .build();
  const auto fleet = run_scenario(fleet_sc);

  // Same seed (hub_seed identity at index 0), same operation order, no
  // shared hardware — only the component-name scope differs, which cannot
  // change the numbers.
  EXPECT_DOUBLE_EQ(fleet.total_joules(), legacy.total_joules());
  EXPECT_EQ(fleet.span, legacy.span);
  EXPECT_EQ(fleet.interrupts_raised, legacy.interrupts_raised);
  EXPECT_EQ(fleet.cpu_wakeups, legacy.cpu_wakeups);
  for (auto rt : energy::kAllRoutines) {
    EXPECT_DOUBLE_EQ(fleet.energy.joules(rt), legacy.energy.joules(rt));
  }
}

TEST(FleetRun, HubZeroOfTwoHubFleetMatchesStandaloneRun) {
  const auto standalone = run_scenario(single(Scheme::kBcom));

  const auto fleet = run_scenario(
      Scenario::builder()
          .scheme(Scheme::kBcom)
          .windows(2)
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter, AppId::kA7Earthquake})
          .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
          .build());
  ASSERT_EQ(fleet.hubs.size(), 2u);

  // Hubs share the clock but no hardware, so adding hub1 must not perturb
  // hub0's *activity*: every activity-driven routine matches the standalone
  // run bit for bit. Only kIdle grows — the shared clock runs until the
  // slowest hub finishes, and hub0's components idle-burn through that tail.
  const auto& hub0 = fleet.hubs[0];
  for (auto rt : energy::kAllRoutines) {
    if (rt == energy::Routine::kIdle) continue;
    EXPECT_DOUBLE_EQ(hub0.energy.joules(rt), standalone.energy.joules(rt))
        << "routine " << to_string(rt);
  }
  EXPECT_GE(hub0.energy.joules(energy::Routine::kIdle),
            standalone.energy.joules(energy::Routine::kIdle));
  EXPECT_EQ(hub0.interrupts_raised, standalone.interrupts_raised);
  EXPECT_EQ(hub0.cpu_wakeups, standalone.cpu_wakeups);
  ASSERT_EQ(hub0.apps.size(), 2u);
  const auto& a2 = hub0.apps.at(AppId::kA2StepCounter);
  const auto& a2_ref = standalone.apps.at(AppId::kA2StepCounter);
  EXPECT_EQ(a2.qos.mean_latency(), a2_ref.qos.mean_latency());
  EXPECT_EQ(a2.instructions, a2_ref.instructions);
}

TEST(FleetRun, FleetTotalsSumPerHubSections) {
  const auto r = run_scenario(Scenario::builder()
                                  .scheme(Scheme::kBatching)
                                  .windows(2)
                                  .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter}, 2)
                                  .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
                                  .build());
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.hubs.size(), 3u);

  double hub_sum = 0.0;
  std::uint64_t interrupts = 0, wakeups = 0;
  for (const auto& hub : r.hubs) {
    hub_sum += hub.total_joules();
    interrupts += hub.interrupts_raised;
    wakeups += hub.cpu_wakeups;
  }
  EXPECT_NEAR(r.total_joules(), hub_sum, 1e-9 * hub_sum);
  EXPECT_EQ(r.interrupts_raised, interrupts);
  EXPECT_EQ(r.cpu_wakeups, wakeups);

  // Per-hub slices satisfy the accounting invariant on their own.
  for (const auto& hub : r.hubs) {
    double routine_sum = 0.0;
    for (auto rt : energy::kAllRoutines) routine_sum += hub.energy.joules(rt);
    double component_sum = 0.0;
    for (const auto& [name, row] : hub.energy.by_component()) {
      for (double j : row) component_sum += j;
    }
    EXPECT_NEAR(routine_sum, component_sum, 1e-9 * routine_sum);
  }
}

TEST(FleetRun, ComponentsAreScopedByHubName) {
  const auto legacy = run_scenario(single());
  EXPECT_EQ(legacy.energy.by_component().count("cpu"), 1u);
  EXPECT_EQ(legacy.energy.by_component().count("hub0/cpu"), 0u);

  const auto fleet = run_scenario(
      Scenario::builder()
          .windows(2)
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter}, 2)
          .build());
  EXPECT_EQ(fleet.energy.by_component().count("cpu"), 0u);
  EXPECT_EQ(fleet.energy.by_component().count("hub0/cpu"), 1u);
  EXPECT_EQ(fleet.energy.by_component().count("hub1/cpu"), 1u);
  // The per-hub report holds only that hub's components.
  ASSERT_EQ(fleet.hubs.size(), 2u);
  EXPECT_EQ(fleet.hubs[0].energy.by_component().count("hub0/cpu"), 1u);
  EXPECT_EQ(fleet.hubs[0].energy.by_component().count("hub1/cpu"), 0u);
}

TEST(FleetRun, CountExpandedHubsDrawDistinctRngStreams) {
  sensors::WorldConfig faulty;
  faulty.sensor_fault_prob = 0.3;
  HubInstance inst;
  inst.app_ids = {AppId::kA2StepCounter};
  inst.world = faulty;
  inst.count = 2;

  const auto r = run_scenario(Scenario::builder().windows(2).add_hub(inst).build());
  ASSERT_EQ(r.hubs.size(), 2u);
  // Identical hubs, but each copy forks its fault draws from its own derived
  // seed — some observable consequence of the differing draws must show.
  const auto& h0 = r.hubs[0];
  const auto& h1 = r.hubs[1];
  const auto& q0 = h0.apps.at(AppId::kA2StepCounter).qos;
  const auto& q1 = h1.apps.at(AppId::kA2StepCounter).qos;
  EXPECT_TRUE(q0.worst_sample_jitter != q1.worst_sample_jitter ||
              h0.sensor_read_errors != h1.sensor_read_errors ||
              h0.total_joules() != h1.total_joules())
      << "count-expanded hubs behaved identically: seed derivation broken?";
}

TEST(FleetRun, MultiHubResultKeepsFlatAppSectionsEmpty) {
  const auto r = run_scenario(
      Scenario::builder()
          .windows(2)
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter})
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter})
          .build());
  ASSERT_TRUE(r.ok());
  // AppIds may repeat across hubs, so per-app data lives in the hub
  // sections; the flat single-hub fields stay empty.
  EXPECT_TRUE(r.apps.empty());
  EXPECT_TRUE(r.plan.decisions.empty());
  EXPECT_EQ(r.hubs[0].apps.size(), 1u);
  EXPECT_EQ(r.hubs[1].apps.size(), 1u);
  EXPECT_NE(r.qos_summary.find("hub0:"), std::string::npos);
  EXPECT_NE(r.qos_summary.find("hub1:"), std::string::npos);
}

TEST(FleetRun, SingleHubResultStillMirrorsFlatSections) {
  const auto r = run_scenario(single());
  ASSERT_EQ(r.hubs.size(), 1u);
  EXPECT_EQ(r.hubs[0].name, "hub0");
  EXPECT_EQ(r.apps.size(), 2u);
  EXPECT_EQ(r.hubs[0].apps.size(), 2u);
  EXPECT_DOUBLE_EQ(r.hubs[0].total_joules(), r.total_joules());
  EXPECT_EQ(r.qos_summary.find("hub0:"), std::string::npos);  // legacy format
}

TEST(FleetRun, ResultJsonCarriesHubSections) {
  const auto r = run_scenario(
      Scenario::builder()
          .windows(2)
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter})
          .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
          .build());
  const std::string json = to_json_text(r);
  EXPECT_NE(json.find("\"hubs\""), std::string::npos);
  EXPECT_NE(json.find("\"hub0\""), std::string::npos);
  EXPECT_NE(json.find("\"hub1\""), std::string::npos);
}

TEST(FleetRun, QosMetAndsOverHubs) {
  // A fleet where one hub trivially meets QoS and the others exist only to
  // prove the AND: all hubs met here.
  const auto r = run_scenario(
      Scenario::builder()
          .scheme(Scheme::kBcom)
          .windows(2)
          .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter})
          .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk})
          .build());
  bool all = true;
  for (const auto& hub : r.hubs) all = all && hub.qos_met;
  EXPECT_EQ(r.qos_met, all);
}

}  // namespace
}  // namespace iotsim::core
