// The sharded fleet executor's determinism contract: for every ExecPolicy,
// run(policy) serializes byte-identically to the single-threaded run() —
// sharding is an execution shape, never a result change.
#include <gtest/gtest.h>

#include <string>

#include "core/result_json.h"
#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario ideal_fleet(int hubs, int windows = 2) {
  auto builder = Scenario::builder()
                     .scheme(Scheme::kBcom)
                     .windows(windows);
  const std::vector<std::vector<AppId>> mixes = {
      {AppId::kA2StepCounter, AppId::kA8Heartbeat},
      {AppId::kA5Blynk, AppId::kA7Earthquake},
      {AppId::kA3ArduinoJson, AppId::kA4M2x},
  };
  for (int i = 0; i < hubs; ++i) {
    builder.add_hub(hw::default_hub_spec(), mixes[static_cast<std::size_t>(i) % mixes.size()]);
  }
  return builder.build();
}

Scenario contended_fleet(int hubs, net::BackoffPolicy backoff,
                         sim::Duration reservation_window = sim::Duration::zero()) {
  auto builder = Scenario::builder()
                     .scheme(Scheme::kBcom)
                     .windows(2);
  for (int i = 0; i < hubs; ++i) {
    builder.add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter, AppId::kA5Blynk});
  }
  net::ApConfig ap;
  ap.bytes_per_second = 6.25e5;
  ap.backoff = backoff;
  ap.reservation_window = reservation_window;
  builder.network(ap);
  return builder.build();
}

std::string run_json(const Scenario& sc, const ExecPolicy& policy) {
  return to_json_text(run_scenario(sc, policy));
}

TEST(FleetShard, ShardedIdealFleetIsByteIdentical) {
  const Scenario sc = ideal_fleet(12);
  const std::string single = run_json(sc, ExecPolicy{});
  for (int shards : {2, 3, 8}) {
    EXPECT_EQ(single, run_json(sc, ExecPolicy{.shards = shards}))
        << "shards=" << shards;
  }
}

TEST(FleetShard, WindowedBarriersAreByteIdentical) {
  const Scenario sc = ideal_fleet(8);
  const std::string single = run_json(sc, ExecPolicy{});
  // A coarse and a very fine window: many barrier rounds must not change
  // any hub's trajectory or the merged float sums.
  EXPECT_EQ(single, run_json(sc, ExecPolicy{.shards = 4,
                                            .window = sim::Duration::ms(250)}));
  EXPECT_EQ(single, run_json(sc, ExecPolicy{.shards = 4,
                                            .window = sim::Duration::ms(7)}));
}

TEST(FleetShard, SharedAccessPointCollapsesToExactSingleShard) {
  for (auto backoff : {net::BackoffPolicy::kFifo, net::BackoffPolicy::kCsma}) {
    const Scenario sc = contended_fleet(6, backoff);
    ScenarioRunner runner{sc};
    EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 8}), 1);
    const std::string single = run_json(sc, ExecPolicy{});
    for (int shards : {2, 8}) {
      EXPECT_EQ(single, run_json(sc, ExecPolicy{.shards = shards}))
          << "backoff=" << static_cast<int>(backoff) << " shards=" << shards;
    }
  }
}

TEST(FleetShard, WindowedAccessPointShardsByteIdentically) {
  // A reservation window promotes the AP coupling into a window-quantum
  // contract: the fleet shards with barriers at window boundaries and must
  // still serialize byte-for-byte like the single-shard run.
  const Scenario sc = contended_fleet(6, net::BackoffPolicy::kFifo,
                                      sim::Duration::ms(10));
  ScenarioRunner runner{sc};
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 4}), 4);
  const std::string single = run_json(sc, ExecPolicy{});
  for (int shards : {2, 3, 8}) {
    EXPECT_EQ(single, run_json(sc, ExecPolicy{.shards = shards}))
        << "shards=" << shards;
  }
}

TEST(FleetShard, WindowedAccessPointReportsShardsInKernelStats) {
  const Scenario sc = contended_fleet(4, net::BackoffPolicy::kFifo,
                                      sim::Duration::ms(5));
  const auto sharded = run_scenario(sc, ExecPolicy{.shards = 2});
  EXPECT_EQ(sharded.energy.kernel().shards, 2);
  EXPECT_GT(sharded.energy.kernel().events_dispatched, 0u);
}

TEST(FleetShard, EffectiveWindowIsForcedToTheReservationWindow) {
  const auto rw = sim::Duration::ms(10);
  ScenarioRunner windowed{contended_fleet(4, net::BackoffPolicy::kFifo, rw)};
  // Whatever quantum the policy asks for, a windowed AP pins the shard
  // barrier to its reservation window — coarser or finer would either skip
  // or split arbitration boundaries.
  EXPECT_EQ(windowed.effective_window(ExecPolicy{}).count_ns(), rw.count_ns());
  EXPECT_EQ(windowed.effective_window(ExecPolicy{.window = sim::Duration::ms(250)}).count_ns(),
            rw.count_ns());
  EXPECT_EQ(windowed.effective_window(ExecPolicy{.window = sim::Duration::ms(1)}).count_ns(),
            rw.count_ns());
  // Without a windowed AP the policy's own quantum stands.
  ScenarioRunner ideal{ideal_fleet(4)};
  EXPECT_EQ(ideal.effective_window(ExecPolicy{.window = sim::Duration::ms(250)}).count_ns(),
            sim::Duration::ms(250).count_ns());
}

TEST(FleetShard, EffectiveShardsClampsToFleetAndPolicy) {
  ScenarioRunner runner{ideal_fleet(4)};
  EXPECT_EQ(runner.effective_shards(ExecPolicy{}), 1);
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 0}), 1);
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = -3}), 1);
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 2}), 2);
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 64}), 4);  // fleet size
}

TEST(FleetShard, PowerTraceForcesSingleShard) {
  auto sc = ideal_fleet(4);
  sc.record_power_trace = true;
  ScenarioRunner runner{sc};
  EXPECT_EQ(runner.effective_shards(ExecPolicy{.shards = 8}), 1);
}

TEST(FleetShard, KernelEventsAreExecutionShapeInvariant) {
  const Scenario sc = ideal_fleet(6);
  const auto single = run_scenario(sc);
  const auto sharded = run_scenario(sc, ExecPolicy{.shards = 3});
  EXPECT_GT(single.energy.kernel().events_dispatched, 0u);
  EXPECT_EQ(single.energy.kernel().events_dispatched,
            sharded.energy.kernel().events_dispatched);
  EXPECT_EQ(single.energy.kernel().shards, 1);
  EXPECT_EQ(sharded.energy.kernel().shards, 3);
}

TEST(FleetShard, SingleHubScenarioRunsUnderAnyPolicy) {
  const Scenario sc = Scenario::builder()
                          .apps({AppId::kA2StepCounter})
                          .scheme(Scheme::kCom)
                          .windows(2)
                          .build();
  EXPECT_EQ(run_json(sc, ExecPolicy{}), run_json(sc, ExecPolicy{.shards = 8}));
}

}  // namespace
}  // namespace iotsim::core
