// Tests for the extensions beyond the paper's evaluation: the §IV-F DMA
// hardware option, the ablation knobs, and trace/ledger cross-checks on
// full scenario runs.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario make(std::vector<AppId> ids, Scheme scheme, int windows = 2) {
  Scenario sc;
  sc.app_ids = std::move(ids);
  sc.scheme = scheme;
  sc.windows = windows;
  return sc;
}

TEST(DmaExtension, SavesEnergyOnTransferHeavyBaseline) {
  auto pio = make({AppId::kA2StepCounter}, Scheme::kBaseline);
  auto dma = pio;
  dma.hub.dma_enabled = true;
  const auto r_pio = run_scenario(pio);
  const auto r_dma = run_scenario(dma);
  EXPECT_LT(r_dma.total_joules(), r_pio.total_joules());
  EXPECT_TRUE(r_dma.qos_met) << r_dma.qos_summary;
}

TEST(DmaExtension, OutputsUnchanged) {
  auto pio = make({AppId::kA2StepCounter}, Scheme::kBatching);
  auto dma = pio;
  dma.hub.dma_enabled = true;
  const auto r_pio = run_scenario(pio);
  const auto r_dma = run_scenario(dma);
  // DMA changes energy/timing, not the data content. Sampling timestamps
  // shift by sub-millisecond amounts (the MCU is no longer pinned during
  // bulk transfers), so a boundary-riding step may migrate one window —
  // the totals must agree.
  double pio_total = 0.0, dma_total = 0.0;
  for (std::size_t w = 0; w < 2; ++w) {
    pio_total += r_pio.apps.at(AppId::kA2StepCounter).records[w].metric;
    dma_total += r_dma.apps.at(AppId::kA2StepCounter).records[w].metric;
  }
  EXPECT_NEAR(pio_total, dma_total, 1.0);
}

TEST(DmaExtension, HelpsBatchedHeavyApp) {
  // The paper's §IV-F claim: heavy apps need hardware help beyond Batching.
  auto pio = make({AppId::kA11SpeechToText}, Scheme::kBatching);
  auto dma = pio;
  dma.hub.dma_enabled = true;
  const auto r_pio = run_scenario(pio);
  const auto r_dma = run_scenario(dma);
  EXPECT_LT(r_dma.total_joules(), r_pio.total_joules());
}

TEST(Knobs, McuSpeedFactorScalesComLatency) {
  auto fast = make({AppId::kA2StepCounter}, Scheme::kCom);
  auto slow = fast;
  slow.mcu_speed_factor = 8.0;
  const auto r_fast = run_scenario(fast);
  const auto r_slow = run_scenario(slow);
  const auto fast_comp =
      r_fast.apps.at(AppId::kA2StepCounter).busy_per_window.computation;
  const auto slow_comp =
      r_slow.apps.at(AppId::kA2StepCounter).busy_per_window.computation;
  EXPECT_NEAR(slow_comp.to_seconds() / fast_comp.to_seconds(), 8.0, 0.5);
}

TEST(Knobs, McuSpeedFactorLeavesBaselineAlone) {
  auto a = make({AppId::kA2StepCounter}, Scheme::kBaseline);
  auto b = a;
  b.mcu_speed_factor = 8.0;  // only offloaded kernels run on the MCU
  EXPECT_DOUBLE_EQ(run_scenario(a).total_joules(), run_scenario(b).total_joules());
}

TEST(TraceIntegration, TraceEnergyMatchesLedger) {
  auto sc = make({AppId::kA2StepCounter}, Scheme::kBatching);
  sc.record_power_trace = true;
  const auto r = run_scenario(sc);
  ASSERT_NE(r.power_trace, nullptr);
  const double trace_j = r.power_trace->joules_between(
      sim::SimTime::origin(), sim::SimTime::origin() + r.span);
  EXPECT_NEAR(trace_j, r.total_joules(), r.total_joules() * 1e-6);
}

TEST(TraceIntegration, BaselineCpuNeverSleepsDuringSampling) {
  auto sc = make({AppId::kA2StepCounter}, Scheme::kBaseline);
  sc.record_power_trace = true;
  const auto r = run_scenario(sc);
  // Sample the CPU's power at mid-window instants: always ≥ active wait.
  for (double t_ms : {100.0, 333.0, 500.0, 777.0, 1500.0}) {
    const double w = r.power_trace->component_watts_at(
        0, sim::SimTime::origin() + sim::Duration::from_ms(t_ms));
    EXPECT_GE(w, 1.89) << "at " << t_ms << " ms";
  }
}

TEST(TraceIntegration, BatchingCpuSleepsMidWindow) {
  auto sc = make({AppId::kA2StepCounter}, Scheme::kBatching);
  sc.record_power_trace = true;
  const auto r = run_scenario(sc);
  const double w = r.power_trace->component_watts_at(
      0, sim::SimTime::origin() + sim::Duration::from_ms(500));
  EXPECT_LE(w, 0.5);  // light sleep, not active
}

TEST(TraceIntegration, ComCpuDeepSleepsMidWindow) {
  auto sc = make({AppId::kA2StepCounter}, Scheme::kCom);
  sc.record_power_trace = true;
  const auto r = run_scenario(sc);
  const double w = r.power_trace->component_watts_at(
      0, sim::SimTime::origin() + sim::Duration::from_ms(500));
  EXPECT_LE(w, 0.15);  // deep sleep
}

// Determinism across every scheme (seeded world, multi-app).
class DeterminismSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(DeterminismSweep, RepeatRunsBitIdentical) {
  auto sc = make({AppId::kA2StepCounter, AppId::kA4M2x}, GetParam());
  sc.world.quakes = {{0.8, 0.2, 1.5}};
  const auto a = run_scenario(sc);
  const auto b = run_scenario(sc);
  EXPECT_DOUBLE_EQ(a.total_joules(), b.total_joules());
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.cpu_wakeups, b.cpu_wakeups);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismSweep,
                         ::testing::Values(Scheme::kBaseline, Scheme::kBatching, Scheme::kCom,
                                           Scheme::kBeam, Scheme::kBcom));

}  // namespace
}  // namespace iotsim::core
