// Regression net for the reproduction itself: the paper's headline numbers
// as asserted bands. If a refactor drifts the calibration out of the
// paper's regime, these fail before EXPERIMENTS.md quietly rots.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"
#include "hw/iot_hub.h"
#include "sim/simulator.h"

namespace iotsim::core {
namespace {

using apps::AppId;

ScenarioResult run(std::vector<AppId> ids, Scheme scheme, int windows = 3) {
  return run_scenario(
      Scenario::builder().apps(std::move(ids)).scheme(scheme).windows(windows).build());
}

// ---- Fig. 1: the 9.5× idle ratio (band: 8–13×) ----------------------------

TEST(PaperReproduction, IdleRatioNearPaper) {
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  hw::IotHub hub{sim, acct, hw::default_hub_spec()};
  sim.run_until(sim::SimTime::origin() + sim::Duration::sec(2));
  hub.flush_power();
  const double idle_w =
      energy::EnergyReport::from_accountant(acct, sim::Duration::sec(2)).average_watts();

  double sum_w = 0.0;
  for (auto id : apps::kLightweightApps) {
    sum_w += run({id}, Scheme::kBaseline).average_watts();
  }
  const double ratio = (sum_w / 10.0) / idle_w;
  EXPECT_GT(ratio, 8.0);   // paper: 9.5×
  EXPECT_LT(ratio, 13.0);
}

// ---- Fig. 10: per-app savings bands ----------------------------------------

struct SavingsBand {
  AppId id;
  double batching_lo, batching_hi;
  double com_lo, com_hi;
};

class SavingsSweep : public ::testing::TestWithParam<SavingsBand> {};

TEST_P(SavingsSweep, WithinBand) {
  const auto& band = GetParam();
  const auto base = run({band.id}, Scheme::kBaseline);
  const double batching = run({band.id}, Scheme::kBatching).energy.savings_vs(base.energy);
  const double com = run({band.id}, Scheme::kCom).energy.savings_vs(base.energy);
  EXPECT_GE(batching, band.batching_lo) << "batching";
  EXPECT_LE(batching, band.batching_hi) << "batching";
  EXPECT_GE(com, band.com_lo) << "com";
  EXPECT_LE(com, band.com_hi) << "com";
}

// Bands bracket both the paper's figures and this model's measured values.
INSTANTIATE_TEST_SUITE_P(
    Apps, SavingsSweep,
    ::testing::Values(SavingsBand{AppId::kA1CoapServer, 0.45, 0.72, 0.70, 0.92},
                      SavingsBand{AppId::kA2StepCounter, 0.45, 0.72, 0.70, 0.92},
                      SavingsBand{AppId::kA3ArduinoJson, 0.50, 0.78, 0.70, 0.92},
                      SavingsBand{AppId::kA4M2x, 0.35, 0.65, 0.60, 0.90},
                      SavingsBand{AppId::kA5Blynk, 0.30, 0.60, 0.65, 0.92},
                      SavingsBand{AppId::kA6Dropbox, 0.40, 0.70, 0.65, 0.92},
                      SavingsBand{AppId::kA7Earthquake, 0.45, 0.72, 0.70, 0.92},
                      SavingsBand{AppId::kA8Heartbeat, 0.50, 0.78, 0.55, 0.85},
                      SavingsBand{AppId::kA9JpegDecoder, 0.25, 0.60, 0.70, 0.92},
                      SavingsBand{AppId::kA10Fingerprint, 0.45, 0.75, 0.65, 0.92}),
    [](const auto& info) { return std::string{apps::code_of(info.param.id)}; });

TEST(PaperReproduction, AverageSavingsNearHeadline) {
  double batching_sum = 0.0, com_sum = 0.0;
  for (auto id : apps::kLightweightApps) {
    const auto base = run({id}, Scheme::kBaseline);
    batching_sum += run({id}, Scheme::kBatching).energy.savings_vs(base.energy);
    com_sum += run({id}, Scheme::kCom).energy.savings_vs(base.energy);
  }
  // Paper: 52% and 85%.
  EXPECT_NEAR(batching_sum / 10.0, 0.52, 0.10);
  EXPECT_NEAR(com_sum / 10.0, 0.85, 0.08);
}

// ---- Fig. 10 baseline structure: data transfer dominates -------------------

TEST(PaperReproduction, DataTransferDominatesEveryBaseline) {
  for (auto id : apps::kLightweightApps) {
    const auto r = run({id}, Scheme::kBaseline);
    const double dt = r.energy.paper_fraction(energy::Routine::kDataTransfer);
    EXPECT_GT(dt, 0.55) << apps::code_of(id);  // paper: ~70–81%
    EXPECT_LT(dt, 0.95) << apps::code_of(id);
  }
}

// ---- Fig. 4: the transfer-energy split -------------------------------------

TEST(PaperReproduction, TransferSplitSharesNearPaper) {
  const auto r = run({AppId::kA2StepCounter}, Scheme::kBaseline);
  double cpu = 0.0, mcu = 0.0, physical = 0.0;
  for (const auto& [name, row] : r.energy.by_component()) {
    const double dt = row[energy::index_of(energy::Routine::kDataTransfer)];
    if (name == "cpu") cpu += dt;
    else if (name == "mcu") mcu += dt;
    else if (name == "link" || name.rfind("pio_", 0) == 0) physical += dt;
  }
  const double total = cpu + mcu + physical;
  EXPECT_NEAR(cpu / total, 0.77, 0.10);       // paper 77%
  EXPECT_NEAR(mcu / total, 0.13, 0.06);       // paper 13%
  EXPECT_NEAR(physical / total, 0.10, 0.07);  // paper 10%
}

// ---- Fig. 13: the speedup structure -----------------------------------------

TEST(PaperReproduction, OnlyA3AndA8SlowDownUnderCom) {
  for (auto id : apps::kLightweightApps) {
    const auto base = run({id}, Scheme::kBaseline);
    const auto com = run({id}, Scheme::kCom);
    const double speedup = base.apps.at(id).busy_per_window.total().to_seconds() /
                           com.apps.at(id).busy_per_window.total().to_seconds();
    if (id == AppId::kA3ArduinoJson || id == AppId::kA8Heartbeat) {
      EXPECT_LT(speedup, 1.0) << apps::code_of(id);
      EXPECT_GT(speedup, 0.6) << apps::code_of(id);  // paper: 0.9 / 0.8
    } else {
      EXPECT_GT(speedup, 1.0) << apps::code_of(id);
    }
  }
}

// ---- §III-A: the 1.14 ms break-even ------------------------------------------

TEST(PaperReproduction, BreakevenFormulaMatchesPaper) {
  EXPECT_NEAR(energy::paper_reference_cpu().light_sleep_breakeven().to_ms(), 1.14, 0.01);
}

// ---- Fig. 12 ordering: heavy mixes -------------------------------------------

TEST(PaperReproduction, HeavyMixSchemeOrdering) {
  const std::vector<AppId> mix{AppId::kA11SpeechToText, AppId::kA6Dropbox};
  const auto base = run(mix, Scheme::kBaseline);
  const double beam = run(mix, Scheme::kBeam).energy.savings_vs(base.energy);
  const double batching = run(mix, Scheme::kBatching).energy.savings_vs(base.energy);
  const double bcom = run(mix, Scheme::kBcom).energy.savings_vs(base.energy);
  // Paper Fig. 12b: BEAM < Batching < BCOM.
  EXPECT_LT(beam, batching);
  EXPECT_LT(batching, bcom);
}

}  // namespace
}  // namespace iotsim::core
