// The sweep's persistent disk tier: a fresh SweepRunner pointed at a warm
// cache directory must serve whole sweeps without executing a single
// scenario, bit-identically to the cold run, under both run() and
// run_one(), and concurrently from multiple runners sharing the directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "core/result_json.h"
#include "core/sweep.h"

namespace iotsim::core {
namespace {

using apps::AppId;

class SweepDiskCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path{::testing::TempDir()} / "iotsim_sweep_disk_cache";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Scenario quick(AppId id, Scheme scheme, int seed = 7) {
    Scenario sc;
    sc.app_ids = {id};
    sc.scheme = scheme;
    sc.windows = 1;
    sc.seed = seed;
    return sc;
  }

  static std::vector<Scenario> grid() {
    return {quick(AppId::kA2StepCounter, Scheme::kBaseline),
            quick(AppId::kA2StepCounter, Scheme::kBatching),
            quick(AppId::kA3ArduinoJson, Scheme::kCom)};
  }

  SweepOptions with_disk(int jobs = 2) const {
    return SweepOptions{.jobs = jobs, .cache_dir = dir_.string()};
  }

  std::filesystem::path dir_;
};

TEST_F(SweepDiskCacheFixture, WarmRunnerExecutesNothingAndMatchesByteForByte) {
  const auto sweep = grid();
  std::vector<std::string> cold;
  {
    SweepRunner runner{with_disk()};
    for (const auto& r : runner.run(sweep)) cold.push_back(to_json_text(r));
    EXPECT_EQ(runner.stats().executed, sweep.size());
    EXPECT_EQ(runner.stats().disk_stores, sweep.size());
    EXPECT_EQ(runner.stats().disk_hits, 0u);
  }
  SweepRunner warm{with_disk()};
  const auto results = warm.run(sweep);
  EXPECT_EQ(warm.stats().executed, 0u);
  EXPECT_EQ(warm.stats().disk_hits, sweep.size());
  EXPECT_EQ(warm.stats().disk_stores, 0u);
  ASSERT_EQ(results.size(), cold.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(to_json_text(results[i]), cold[i]) << "scenario " << i;
  }
}

TEST_F(SweepDiskCacheFixture, RunOnePromotesDiskHitsIntoTheMemo) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  {
    SweepRunner runner{with_disk(1)};
    (void)runner.run_one(sc);
    EXPECT_EQ(runner.stats().disk_stores, 1u);
  }
  SweepRunner warm{with_disk(1)};
  (void)warm.run_one(sc);
  EXPECT_EQ(warm.stats().executed, 0u);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  // Promoted into the in-memory memo: the second query is a memory hit,
  // not a second disk read.
  (void)warm.run_one(sc);
  EXPECT_EQ(warm.stats().disk_hits, 1u);
  EXPECT_EQ(warm.stats().cache_hits, 1u);
}

TEST_F(SweepDiskCacheFixture, MemoryTierStillDedupesWithinARun) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{with_disk()};
  (void)runner.run({sc, sc, sc});
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 2u);
  // Each distinct scenario is stored once, not once per duplicate.
  EXPECT_EQ(runner.stats().disk_stores, 1u);
}

TEST_F(SweepDiskCacheFixture, ClearCacheKeepsTheDiskTier) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{with_disk()};
  (void)runner.run({sc});
  runner.clear_cache();
  EXPECT_EQ(runner.cache_size(), 0u);
  EXPECT_EQ(runner.stats().executed, 0u);  // stats reset too
  // The memo is gone but the disk tier survives: re-running is a disk hit.
  (void)runner.run({sc});
  EXPECT_EQ(runner.stats().executed, 0u);
  EXPECT_EQ(runner.stats().disk_hits, 1u);
}

TEST_F(SweepDiskCacheFixture, DiskTierRequiresMemoization) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{SweepOptions{.jobs = 1, .memoize = false, .cache_dir = dir_.string()}};
  EXPECT_EQ(runner.disk_cache(), nullptr);
  (void)runner.run({sc});
  (void)runner.run({sc});
  EXPECT_EQ(runner.stats().executed, 2u);
  EXPECT_EQ(runner.stats().disk_stores, 0u);
}

TEST_F(SweepDiskCacheFixture, NoCacheDirMeansNoDiskTier) {
  SweepRunner runner{SweepOptions{.jobs = 1}};
  EXPECT_EQ(runner.disk_cache(), nullptr);
  (void)runner.run({quick(AppId::kA2StepCounter, Scheme::kBaseline)});
  EXPECT_EQ(runner.stats().disk_stores, 0u);
}

TEST_F(SweepDiskCacheFixture, ConcurrentRunnersShareTheDirectorySafely) {
  // Two runners, same cache directory, racing over an overlapping grid —
  // the shape TSan must bless. Results must match the serial baseline.
  const auto sweep = grid();
  std::vector<std::string> want;
  {
    SweepRunner serial{SweepOptions{.jobs = 1}};
    for (const auto& r : serial.run(sweep)) want.push_back(to_json_text(r));
  }
  std::vector<std::vector<std::string>> got(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      SweepRunner runner{with_disk()};
      for (const auto& r : runner.run(sweep)) {
        got[static_cast<std::size_t>(t)].push_back(to_json_text(r));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 2; ++t) {
    ASSERT_EQ(got[static_cast<std::size_t>(t)].size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(t)][i], want[i]);
    }
  }
  // Whoever lost the race, the directory ends warm and consistent.
  SweepRunner warm{with_disk()};
  (void)warm.run(sweep);
  EXPECT_EQ(warm.stats().executed, 0u);
}

}  // namespace
}  // namespace iotsim::core
