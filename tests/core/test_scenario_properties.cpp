// Property tests over full scenario runs: the invariants of DESIGN.md §5.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario make(std::vector<AppId> ids, Scheme scheme, int windows = 2,
              std::uint64_t seed = 42) {
  return Scenario::builder()
      .apps(std::move(ids))
      .scheme(scheme)
      .windows(windows)
      .seed(seed)
      .build();
}

// ---- Property 1: energy conservation -------------------------------------

class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<Scheme, AppId>> {};

TEST_P(ConservationSweep, RoutineSumEqualsTotal) {
  const auto [scheme, app] = GetParam();
  const auto r = run_scenario(make({app}, scheme));
  double sum = 0.0;
  for (auto rt : energy::kAllRoutines) sum += r.energy.joules(rt);
  EXPECT_NEAR(sum, r.total_joules(), r.total_joules() * 1e-9 + 1e-12);
  EXPECT_GT(r.total_joules(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndApps, ConservationSweep,
    ::testing::Combine(::testing::Values(Scheme::kBaseline, Scheme::kBatching, Scheme::kCom),
                       ::testing::Values(AppId::kA2StepCounter, AppId::kA3ArduinoJson,
                                         AppId::kA9JpegDecoder, AppId::kA4M2x)));

// ---- Property: determinism -----------------------------------------------

TEST(ScenarioProperties, IdenticalSeedsGiveIdenticalResults) {
  const auto a = run_scenario(make({AppId::kA2StepCounter, AppId::kA4M2x}, Scheme::kBaseline));
  const auto b = run_scenario(make({AppId::kA2StepCounter, AppId::kA4M2x}, Scheme::kBaseline));
  EXPECT_DOUBLE_EQ(a.total_joules(), b.total_joules());
  EXPECT_EQ(a.interrupts_raised, b.interrupts_raised);
  EXPECT_EQ(a.span, b.span);
  for (const auto& [id, res] : a.apps) {
    for (std::size_t w = 0; w < res.records.size(); ++w) {
      EXPECT_EQ(res.records[w].summary, b.apps.at(id).records[w].summary);
    }
  }
}

TEST(ScenarioProperties, DifferentSeedsDifferInData) {
  const auto a = run_scenario(make({AppId::kA3ArduinoJson}, Scheme::kBaseline, 2, 1));
  const auto b = run_scenario(make({AppId::kA3ArduinoJson}, Scheme::kBaseline, 2, 2));
  // Different environment random walks ⇒ different JSON documents.
  EXPECT_NE(a.apps.at(AppId::kA3ArduinoJson).records[0].metric,
            b.apps.at(AppId::kA3ArduinoJson).records[0].metric);
}

// ---- Property 3/4: batching interrupt arithmetic --------------------------

TEST(ScenarioProperties, BatchFlushesControlInterruptCount) {
  for (int flushes : {1, 4, 10}) {
    auto sc = make({AppId::kA2StepCounter}, Scheme::kBatching);
    sc.batch_flushes_per_window = flushes;
    const auto r = run_scenario(sc);
    EXPECT_EQ(r.interrupts_raised, static_cast<std::uint64_t>(flushes) * 2u)
        << flushes << " flushes x 2 windows";
  }
}

TEST(ScenarioProperties, BatchingNeverRaisesMoreThanBaseline) {
  const auto base = run_scenario(make({AppId::kA5Blynk}, Scheme::kBaseline));
  for (int flushes : {1, 10, 100}) {
    auto sc = make({AppId::kA5Blynk}, Scheme::kBatching);
    sc.batch_flushes_per_window = flushes;
    const auto r = run_scenario(sc);
    EXPECT_LE(r.interrupts_raised, base.interrupts_raised);
  }
}

TEST(ScenarioProperties, MoreFlushesNeverCheaperThanFewer) {
  double previous = 0.0;
  for (int flushes : {1, 10, 100}) {
    auto sc = make({AppId::kA2StepCounter}, Scheme::kBatching);
    sc.batch_flushes_per_window = flushes;
    const double joules = run_scenario(sc).total_joules();
    EXPECT_GE(joules, previous) << flushes;
    previous = joules;
  }
}

// ---- Property 5: COM transfers only results -------------------------------

TEST(ScenarioProperties, ComTransferEnergyBelowBaseline) {
  for (auto id : {AppId::kA2StepCounter, AppId::kA6Dropbox, AppId::kA9JpegDecoder}) {
    const auto base = run_scenario(make({id}, Scheme::kBaseline));
    const auto com = run_scenario(make({id}, Scheme::kCom));
    EXPECT_LT(com.energy.paper_joules(energy::Routine::kDataTransfer),
              base.energy.paper_joules(energy::Routine::kDataTransfer) * 0.05)
        << apps::code_of(id);
  }
}

// ---- Property 6: QoS under every scheme ------------------------------------

class QosSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(QosSweep, SingleAppsMeetDeadlines) {
  for (auto id : {AppId::kA2StepCounter, AppId::kA8Heartbeat, AppId::kA10Fingerprint}) {
    const auto r = run_scenario(make({id}, GetParam()));
    EXPECT_TRUE(r.qos_met) << to_string(GetParam()) << " " << apps::code_of(id) << "\n"
                           << r.qos_summary;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, QosSweep,
                         ::testing::Values(Scheme::kBaseline, Scheme::kBatching, Scheme::kCom,
                                           Scheme::kBeam, Scheme::kBcom));

// ---- Property 10: MCU memory budget ----------------------------------------

TEST(ScenarioProperties, PlannerNeverOversubscribesMcuRam) {
  OffloadPlanner planner{hw::default_hub_spec()};
  for (const auto& ids :
       {std::vector<AppId>{AppId::kA2StepCounter, AppId::kA9JpegDecoder, AppId::kA10Fingerprint},
        std::vector<AppId>{AppId::kA4M2x, AppId::kA5Blynk, AppId::kA6Dropbox, AppId::kA1CoapServer},
        std::vector<AppId>(apps::kLightweightApps.begin(), apps::kLightweightApps.end())}) {
    const auto plan = planner.plan(ids);
    EXPECT_LE(plan.mcu_ram_used, hw::default_hub_spec().mcu_available_ram());
  }
}

// ---- Sampling fidelity ------------------------------------------------------

TEST(ScenarioProperties, EveryWindowCollectsExpectedSamples) {
  for (Scheme scheme : {Scheme::kBaseline, Scheme::kBatching, Scheme::kCom}) {
    const auto r = run_scenario(make({AppId::kA4M2x}, scheme));
    for (const auto& rec : r.apps.at(AppId::kA4M2x).records) {
      // The M2X kernel reports how many samples it consumed.
      EXPECT_DOUBLE_EQ(rec.metric, 2220.0) << to_string(scheme);
    }
  }
}

TEST(ScenarioProperties, SamplingJitterBounded) {
  const auto r = run_scenario(make({AppId::kA2StepCounter}, Scheme::kBaseline, 3));
  // Single-app 1 kHz sampling should hold its period within a millisecond.
  EXPECT_LT(r.apps.at(AppId::kA2StepCounter).qos.worst_sample_jitter,
            sim::Duration::from_ms(1.5));
}

// ---- Energy monotonicity in windows ----------------------------------------

TEST(ScenarioProperties, EnergyScalesWithWindows) {
  const auto two = run_scenario(make({AppId::kA2StepCounter}, Scheme::kBaseline, 2));
  const auto four = run_scenario(make({AppId::kA2StepCounter}, Scheme::kBaseline, 4));
  const double ratio = four.total_joules() / two.total_joules();
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

}  // namespace
}  // namespace iotsim::core
