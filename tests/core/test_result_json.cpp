// The JSON export must round-trip through the library's own parser and
// carry the load-bearing fields.
#include "core/result_json.h"

#include <gtest/gtest.h>

#include "codecs/json/json_parser.h"
#include "core/scenario_runner.h"

namespace iotsim::core {
namespace {

using apps::AppId;

ScenarioResult sample_result() {
  Scenario sc;
  sc.app_ids = {AppId::kA2StepCounter, AppId::kA7Earthquake};
  sc.scheme = Scheme::kBcom;
  sc.windows = 2;
  sc.world.quakes = {{0.6, 0.2, 2.0}};
  return run_scenario(sc);
}

TEST(ResultJson, ParsesBackWithOwnParser) {
  const auto r = sample_result();
  const auto parsed = codecs::json::parse(to_json_text(r));
  ASSERT_TRUE(parsed.ok()) << parsed.error->message;
  const auto& doc = *parsed.value;
  EXPECT_EQ(doc.find("scheme")->as_string(), "BCOM");
  EXPECT_NEAR(doc.find("total_joules")->as_number(), r.total_joules(),
              r.total_joules() * 1e-9 + 1e-9);
  EXPECT_EQ(doc.find("qos_met")->as_bool(), r.qos_met);
}

TEST(ResultJson, CarriesPerAppRecords) {
  const auto r = sample_result();
  const auto parsed = codecs::json::parse(to_json_text(r));
  ASSERT_TRUE(parsed.ok());
  const auto* apps_v = parsed.value->find("apps");
  ASSERT_NE(apps_v, nullptr);
  const auto* a2 = apps_v->find("A2");
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->find("mode")->as_string(), "offloaded");
  const auto& records = a2->find("records")->as_array();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].find("summary")->as_string().empty());
}

TEST(ResultJson, EnergyByRoutineSumsToTotal) {
  const auto r = sample_result();
  const auto parsed = codecs::json::parse(to_json_text(r));
  ASSERT_TRUE(parsed.ok());
  double sum = 0.0;
  for (const auto& [name, j] : parsed.value->find("energy_by_routine_j")->as_object()) {
    sum += j.as_number();
  }
  EXPECT_NEAR(sum, parsed.value->find("total_joules")->as_number(), 1e-6);
}

TEST(ResultJson, OffloadPlanSerialised) {
  const auto r = sample_result();
  const auto parsed = codecs::json::parse(to_json_text(r));
  ASSERT_TRUE(parsed.ok());
  const auto* plan = parsed.value->find("offload_plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->find("A2")->find("offload")->as_bool());
  EXPECT_FALSE(plan->find("A2")->find("reason")->as_string().empty());
}

}  // namespace
}  // namespace iotsim::core
