// SweepRunner: parallel determinism, memoization, ordered results — and the
// ThreadPool underneath it.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/scenario_runner.h"
#include "core/sweep.h"
#include "core/thread_pool.h"

namespace iotsim::core {
namespace {

using apps::AppId;

Scenario quick(AppId id, Scheme scheme, std::uint64_t seed = 42) {
  return Scenario::builder().app(id).scheme(scheme).windows(1).seed(seed).build();
}

// ---- scenario_key ---------------------------------------------------------

TEST(ScenarioKey, EqualScenariosShareAKey) {
  EXPECT_EQ(scenario_key(quick(AppId::kA2StepCounter, Scheme::kCom)),
            scenario_key(quick(AppId::kA2StepCounter, Scheme::kCom)));
}

TEST(ScenarioKey, EveryFieldParticipates) {
  const auto base = quick(AppId::kA2StepCounter, Scheme::kCom);
  const auto base_key = scenario_key(base);

  EXPECT_NE(scenario_key(quick(AppId::kA7Earthquake, Scheme::kCom)), base_key);
  EXPECT_NE(scenario_key(quick(AppId::kA2StepCounter, Scheme::kBatching)), base_key);
  EXPECT_NE(scenario_key(quick(AppId::kA2StepCounter, Scheme::kCom, 43)), base_key);

  auto windows = base;
  windows.windows = 2;
  EXPECT_NE(scenario_key(windows), base_key);

  auto flushes = base;
  flushes.batch_flushes_per_window = 2;
  EXPECT_NE(scenario_key(flushes), base_key);

  auto mcu = base;
  mcu.mcu_speed_factor = 2.0;
  EXPECT_NE(scenario_key(mcu), base_key);

  auto trace = base;
  trace.record_power_trace = true;
  EXPECT_NE(scenario_key(trace), base_key);

  auto hub = base;
  hub.hub.dma_enabled = !hub.hub.dma_enabled;
  EXPECT_NE(scenario_key(hub), base_key);

  auto world = base;
  world.world.heart_bpm += 1.0;
  EXPECT_NE(scenario_key(world), base_key);
}

TEST(ScenarioKey, FingerprintIsStableAcrossCalls) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  EXPECT_EQ(scenario_fingerprint(sc), scenario_fingerprint(sc));
}

// ---- determinism across thread counts -------------------------------------

TEST(Sweep, SameResultsAtAnyJobCount) {
  std::vector<Scenario> sweep;
  for (auto scheme : {Scheme::kBaseline, Scheme::kBatching, Scheme::kCom}) {
    sweep.push_back(quick(AppId::kA2StepCounter, scheme));
    sweep.push_back(quick(AppId::kA3ArduinoJson, scheme));
  }

  const auto serial = run_sweep(sweep, SweepOptions{.jobs = 1});
  const auto parallel = run_sweep(sweep, SweepOptions{.jobs = 8});
  ASSERT_EQ(serial.size(), sweep.size());
  ASSERT_EQ(parallel.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    // Bit-identical, not approximately equal: the acceptance bar for the
    // parallel engine.
    EXPECT_EQ(serial[i].total_joules(), parallel[i].total_joules()) << "scenario " << i;
    EXPECT_EQ(serial[i].interrupts_raised, parallel[i].interrupts_raised) << "scenario " << i;
    EXPECT_EQ(serial[i].cpu_wakeups, parallel[i].cpu_wakeups) << "scenario " << i;
  }
}

TEST(Sweep, MatchesDirectRunScenario) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBatching);
  const auto direct = run_scenario(sc);
  const auto swept = run_sweep({sc}, SweepOptions{.jobs = 4});
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(direct.total_joules(), swept[0].total_joules());
}

TEST(Sweep, ResultsKeepInputOrder) {
  const std::vector<Scenario> sweep = {quick(AppId::kA2StepCounter, Scheme::kCom),
                                       quick(AppId::kA3ArduinoJson, Scheme::kCom),
                                       quick(AppId::kA2StepCounter, Scheme::kBaseline)};
  const auto results = run_sweep(sweep, SweepOptions{.jobs = 8});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].apps.count(AppId::kA2StepCounter), 1u);
  EXPECT_EQ(results[1].apps.count(AppId::kA3ArduinoJson), 1u);
  EXPECT_EQ(results[2].apps.count(AppId::kA2StepCounter), 1u);
  // Scheme ordering: COM beats Baseline for A2, so slot 0 < slot 2.
  EXPECT_LT(results[0].total_joules(), results[2].total_joules());
}

// ---- memoization ----------------------------------------------------------

TEST(Sweep, DuplicateScenariosRunOnce) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{SweepOptions{.jobs = 4}};
  const auto results = runner.run({sc, sc, sc, sc});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(runner.stats().scheduled, 4u);
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 3u);
  for (const auto& r : results) EXPECT_EQ(r.total_joules(), results[0].total_joules());
}

TEST(Sweep, CacheSurvivesAcrossBatches) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBatching);
  SweepRunner runner{SweepOptions{.jobs = 2}};
  const auto first = runner.run({sc});
  const auto second = runner.run({sc});
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 1u);
  EXPECT_EQ(first[0].total_joules(), second[0].total_joules());
}

TEST(Sweep, DistinctSeedsMissTheCache) {
  SweepRunner runner{SweepOptions{.jobs = 2}};
  (void)runner.run({quick(AppId::kA2StepCounter, Scheme::kBaseline, 1),
              quick(AppId::kA2StepCounter, Scheme::kBaseline, 2)});
  EXPECT_EQ(runner.stats().executed, 2u);
  EXPECT_EQ(runner.stats().cache_hits, 0u);
  EXPECT_EQ(runner.cache_size(), 2u);
}

TEST(Sweep, MemoizationCanBeDisabled) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{SweepOptions{.jobs = 2, .memoize = false}};
  (void)runner.run({sc});
  (void)runner.run({sc});
  EXPECT_EQ(runner.stats().executed, 2u);
  EXPECT_EQ(runner.stats().cache_hits, 0u);
  EXPECT_EQ(runner.cache_size(), 0u);
}

TEST(Sweep, ClearCacheForcesReexecution) {
  const auto sc = quick(AppId::kA2StepCounter, Scheme::kBaseline);
  SweepRunner runner{SweepOptions{.jobs = 1}};
  (void)runner.run({sc});
  runner.clear_cache();
  // clear_cache() drops the memo AND zeroes the stats: the runner reads as
  // factory-fresh, not as a cache that mysteriously stopped hitting.
  EXPECT_EQ(runner.cache_size(), 0u);
  EXPECT_EQ(runner.stats().scheduled, 0u);
  EXPECT_EQ(runner.stats().executed, 0u);
  EXPECT_EQ(runner.stats().cache_hits, 0u);
  (void)runner.run({sc});
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 0u);
}

TEST(Sweep, RunOneMemoizesToo) {
  const auto sc = quick(AppId::kA3ArduinoJson, Scheme::kCom);
  SweepRunner runner{SweepOptions{.jobs = 1}};
  const auto a = runner.run_one(sc);
  const auto b = runner.run_one(sc);
  EXPECT_EQ(runner.stats().executed, 1u);
  EXPECT_EQ(runner.stats().cache_hits, 1u);
  EXPECT_EQ(a.total_joules(), b.total_joules());
}

// ---- invalid scenarios ----------------------------------------------------

TEST(Sweep, InvalidScenarioSurfacesErrorsWithoutRunning) {
  const auto bad = Scenario::builder().windows(0).build();
  SweepRunner runner{SweepOptions{.jobs = 2}};
  const auto results = runner.run({bad, quick(AppId::kA2StepCounter, Scheme::kBaseline)});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_FALSE(results[0].errors.empty());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(runner.stats().invalid, 1u);
  EXPECT_EQ(runner.stats().executed, 1u);
}

// ---- options --------------------------------------------------------------

TEST(Sweep, ExplicitJobCountIsRespected) {
  EXPECT_EQ(SweepRunner{SweepOptions{.jobs = 3}}.jobs(), 3);
  // jobs = 0 resolves to something runnable.
  EXPECT_GE(SweepRunner{SweepOptions{}}.jobs(), 1);
}

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool{4};
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor joins after the queue is drained
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ClampsNonPositiveThreadCount) {
  ThreadPool pool{0};
  EXPECT_GE(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace iotsim::core
