// ScenarioBuilder fluency and Scenario::validate() structured errors.
#include <gtest/gtest.h>

#include "core/scenario_runner.h"
#include "core/sweep.h"

namespace iotsim::core {
namespace {

using apps::AppId;

TEST(ScenarioBuilder, DefaultsMatchRawAggregate) {
  const Scenario raw;
  const auto built = Scenario::builder().build();
  EXPECT_EQ(scenario_key(raw), scenario_key(built));
}

TEST(ScenarioBuilder, SettersMapOntoFields) {
  sensors::WorldConfig world;
  world.heart_bpm = 91.0;
  auto hub = hw::default_hub_spec();
  hub.dma_enabled = true;

  const auto sc = Scenario::builder()
                      .apps({AppId::kA2StepCounter, AppId::kA7Earthquake})
                      .scheme(Scheme::kBcom)
                      .windows(10)
                      .seed(7)
                      .world(world)
                      .hub(hub)
                      .record_power_trace()
                      .batch_flushes_per_window(4)
                      .mcu_speed_factor(2.5)
                      .build();

  EXPECT_EQ(sc.app_ids, (std::vector<AppId>{AppId::kA2StepCounter, AppId::kA7Earthquake}));
  EXPECT_EQ(sc.scheme, Scheme::kBcom);
  EXPECT_EQ(sc.windows, 10);
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_DOUBLE_EQ(sc.world.heart_bpm, 91.0);
  EXPECT_TRUE(sc.hub.dma_enabled);
  EXPECT_TRUE(sc.record_power_trace);
  EXPECT_EQ(sc.batch_flushes_per_window, 4);
  EXPECT_DOUBLE_EQ(sc.mcu_speed_factor, 2.5);
}

TEST(ScenarioBuilder, AppAppendsIncrementally) {
  const auto sc = Scenario::builder()
                      .app(AppId::kA1CoapServer)
                      .app(AppId::kA6Dropbox)
                      .build();
  EXPECT_EQ(sc.app_ids, (std::vector<AppId>{AppId::kA1CoapServer, AppId::kA6Dropbox}));
}

TEST(ScenarioValidate, WellFormedScenarioHasNoErrors) {
  const auto sc = Scenario::builder().apps({AppId::kA2StepCounter}).build();
  EXPECT_TRUE(sc.validate().empty());
}

TEST(ScenarioValidate, EmptyAppListIsAnError) {
  const auto errors = Scenario::builder().build().validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "app_ids");
}

TEST(ScenarioValidate, DuplicateAppsAreAnError) {
  const auto sc = Scenario::builder()
                      .apps({AppId::kA2StepCounter, AppId::kA2StepCounter})
                      .build();
  const auto errors = sc.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "app_ids");
}

TEST(ScenarioValidate, NonPositiveWindows) {
  const auto errors =
      Scenario::builder().apps({AppId::kA2StepCounter}).windows(0).build().validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "windows");
}

TEST(ScenarioValidate, BatchFlushesBelowOne) {
  const auto errors = Scenario::builder()
                          .apps({AppId::kA2StepCounter})
                          .batch_flushes_per_window(0)
                          .build()
                          .validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "batch_flushes_per_window");
}

TEST(ScenarioValidate, NonPositiveMcuSpeedFactor) {
  const auto errors = Scenario::builder()
                          .apps({AppId::kA2StepCounter})
                          .mcu_speed_factor(0.0)
                          .build()
                          .validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "mcu_speed_factor");
}

TEST(ScenarioValidate, FaultProbabilityOutOfRange) {
  sensors::WorldConfig world;
  world.sensor_fault_prob = 1.5;
  const auto errors = Scenario::builder()
                          .apps({AppId::kA2StepCounter})
                          .world(world)
                          .build()
                          .validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "world.sensor_fault_prob");
}

TEST(ScenarioValidate, MultipleErrorsAccumulate) {
  const auto errors = Scenario::builder().windows(-3).mcu_speed_factor(-1.0).build().validate();
  EXPECT_EQ(errors.size(), 3u);  // empty apps + windows + mcu_speed_factor
}

TEST(ScenarioValidate, ToStringNamesTheField) {
  const auto errors = Scenario::builder().build().validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(to_string(errors[0]).find("app_ids"), std::string::npos);
}

TEST(ScenarioValidate, RunScenarioSurfacesErrorsInsteadOfRunning) {
  const auto r = run_scenario(Scenario::builder().windows(0).build());
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.qos_met);
  EXPECT_EQ(r.apps.size(), 0u);
  EXPECT_DOUBLE_EQ(r.total_joules(), 0.0);
  ASSERT_EQ(r.errors.size(), 2u);  // empty apps + windows
}

}  // namespace
}  // namespace iotsim::core
