// Scenario-level contention: shared-AP fleets are deterministic at any job
// count, shrinking the uplink monotonically raises network energy and airtime
// wait, per-hub stats reassemble the fleet congestion section, queue-bound
// drops surface in results, and the default IdealMedium path reports an
// unmodeled network with untouched counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/result_json.h"
#include "core/scenario_runner.h"
#include "core/sweep.h"
#include "net/config.h"

namespace iotsim::core {
namespace {

using apps::AppId;
using energy::Routine;

/// A four-hub fleet with chatty portfolios; `bandwidth` <= 0 leaves the
/// scenario on the default IdealMedium.
Scenario fleet(double bandwidth) {
  auto builder = Scenario::builder()
                     .add_hub(hw::default_hub_spec(), {AppId::kA2StepCounter, AppId::kA8Heartbeat})
                     .add_hub(hw::default_hub_spec(), {AppId::kA5Blynk, AppId::kA7Earthquake})
                     .add_hub(hw::default_hub_spec(), {AppId::kA3ArduinoJson, AppId::kA4M2x}, 2)
                     .scheme(Scheme::kBcom)
                     .windows(2)
                     .seed(11);
  if (bandwidth > 0.0) {
    net::ApConfig ap;
    ap.bytes_per_second = bandwidth;
    builder.network(ap);
  }
  return builder.build();
}

TEST(Contention, UnmodeledNetworkReportsQuietCongestionSection) {
  const auto result = run_scenario(fleet(0.0));
  ASSERT_TRUE(result.ok());
  const auto& c = result.energy.congestion();
  EXPECT_FALSE(c.modeled);
  EXPECT_EQ(c.airtime_wait, sim::Duration::zero());
  EXPECT_EQ(c.retries, 0u);
  EXPECT_EQ(c.drops, 0u);
  EXPECT_DOUBLE_EQ(c.utilization, 0.0);
  for (const auto& hub : result.hubs) {
    EXPECT_EQ(hub.airtime_wait, sim::Duration::zero());
    EXPECT_EQ(hub.net_retries, 0u);
    EXPECT_EQ(hub.net_drops, 0u);
  }
}

TEST(Contention, SharedApFleetIsDeterministicRunToRun) {
  const auto first = run_scenario(fleet(6.25e5));
  const auto second = run_scenario(fleet(6.25e5));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(to_json_text(first), to_json_text(second));
}

TEST(Contention, SweepJobCountDoesNotChangeSharedApResults) {
  const std::vector<Scenario> scenarios = {fleet(2.5e6), fleet(6.25e5), fleet(1.25e5)};
  SweepRunner serial{SweepOptions{.jobs = 1, .memoize = false}};
  SweepRunner parallel{SweepOptions{.jobs = 4, .memoize = false}};
  const auto a = serial.run(scenarios);
  const auto b = parallel.run(scenarios);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(to_json_text(a[i]), to_json_text(b[i])) << "scenario #" << i;
  }
}

TEST(Contention, ShrinkingUplinkMonotonicallyRaisesWaitAndNetworkEnergy) {
  // Ideal, then 2.5 MB/s, 625 KB/s, 125 KB/s shared uplinks.
  const std::vector<double> bandwidths = {0.0, 2.5e6, 6.25e5, 1.25e5};
  std::vector<ScenarioResult> results;
  for (const double bw : bandwidths) results.push_back(run_scenario(fleet(bw)));
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_GE(results[i].energy.joules(Routine::kNetwork),
              results[i - 1].energy.joules(Routine::kNetwork) - 1e-9)
        << "bandwidth step #" << i;
    EXPECT_GE(results[i].energy.congestion().airtime_wait,
              results[i - 1].energy.congestion().airtime_wait)
        << "bandwidth step #" << i;
  }
  // The slowest uplink must actually induce contention, not just tie.
  EXPECT_GT(results.back().energy.congestion().airtime_wait, sim::Duration::zero());
  EXPECT_GT(results.back().energy.congestion().utilization, 0.0);
}

TEST(Contention, PerHubStatsSumToTheFleetCongestionSection) {
  const auto result = run_scenario(fleet(2.5e5));
  ASSERT_TRUE(result.ok());
  const auto& fleet_totals = result.energy.congestion();
  EXPECT_TRUE(fleet_totals.modeled);
  sim::Duration wait = sim::Duration::zero();
  std::uint64_t grants = 0, retries = 0, drops = 0;
  for (const auto& hub : result.hubs) {
    wait = wait + hub.airtime_wait;
    grants += hub.airtime_grants;
    retries += hub.net_retries;
    drops += hub.net_drops;
  }
  EXPECT_EQ(wait, fleet_totals.airtime_wait);
  EXPECT_EQ(grants, fleet_totals.grants);
  EXPECT_EQ(retries, fleet_totals.retries);
  EXPECT_EQ(drops, fleet_totals.drops);
  EXPECT_GT(grants, 0u);
}

TEST(Contention, StarvedQueueSurfacesDrops) {
  Scenario sc = fleet(0.0);
  net::ApConfig ap;
  ap.bytes_per_second = 2.0e4;  // 20 KB/s: bursts overlap heavily
  ap.queue_depth = 1;
  sc.network = ap;
  const auto result = run_scenario(sc);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.energy.congestion().drops, 0u);
}

TEST(Contention, CsmaBackoffIsDeterministicThroughTheRunner) {
  Scenario sc = fleet(0.0);
  net::ApConfig ap;
  ap.bytes_per_second = 1.25e5;
  ap.backoff = net::BackoffPolicy::kCsma;
  sc.network = ap;
  const auto first = run_scenario(sc);
  const auto second = run_scenario(sc);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.energy.congestion().retries, 0u);
  EXPECT_EQ(to_json_text(first), to_json_text(second));
}

TEST(Contention, JsonCarriesTheNetworkSectionAndPerHubCounters) {
  const auto result = run_scenario(fleet(1.25e5));
  ASSERT_TRUE(result.ok());
  const std::string json = to_json_text(result);
  EXPECT_NE(json.find("\"network\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"airtime_wait_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"net_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"net_drops\""), std::string::npos);
  EXPECT_NE(json.find("\"airtime_grants\""), std::string::npos);
}

TEST(Contention, InvalidNetworkConfigFailsValidation) {
  Scenario sc = fleet(0.0);
  net::ApConfig ap;
  ap.bytes_per_second = -1.0;
  sc.network = ap;
  const auto result = run_scenario(sc);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.errors.empty());
  EXPECT_EQ(result.errors[0].field, "network.bytes_per_second");
}

}  // namespace
}  // namespace iotsim::core
