// net::Medium contract: IdealMedium's no-suspension grants, FIFO
// serialization with exact wait accounting, bounded-queue drops, uplink
// airtime stretching, CSMA backoff determinism, and utilization.
#include "net/medium.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/shared_access_point.h"
#include "sim/simulator.h"

namespace iotsim::net {
namespace {

using sim::Duration;
using sim::Rng;
using sim::SimTime;
using sim::Task;

TEST(IdealMedium, GrantsInstantlyWithoutAdvancingTime) {
  sim::Simulator sim;
  IdealMedium medium;
  const std::size_t a = medium.attach("nic", Rng{1});

  bool granted = false;
  SimTime grant_time;
  auto p = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(5)};
    const Grant g = co_await medium.acquire(a, 1000, Duration::ms(10));
    granted = g.granted;
    grant_time = sim.now();
    EXPECT_EQ(g.airtime, Duration::ms(10));  // NIC wire speed, unstretched
  };
  sim.spawn(p());
  sim.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(grant_time, SimTime::origin() + Duration::ms(5));  // no wait
  EXPECT_TRUE(medium.free_now());
  EXPECT_EQ(medium.stats(a).grants, 1u);
  EXPECT_EQ(medium.stats(a).airtime_wait, Duration::zero());
  EXPECT_EQ(medium.stats(a).retries, 0u);
  EXPECT_EQ(medium.stats(a).drops, 0u);
  EXPECT_DOUBLE_EQ(medium.utilization(sim.now()), 0.0);
}

ApConfig fast_ap() {
  ApConfig cfg;
  cfg.bytes_per_second = 1.0e9;  // AP never the bottleneck: airtime = nic wire
  cfg.queue_depth = 8;
  cfg.backoff = BackoffPolicy::kFifo;
  return cfg;
}

TEST(SharedAccessPoint, FifoSerializesOverlappingBursts) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, fast_ap()};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});

  SimTime a_done, b_done;
  auto pa = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(100));
    EXPECT_TRUE(g.granted);
    co_await sim::Delay{g.airtime};
    a_done = sim.now();
  };
  auto pb = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(b, 1000, Duration::ms(40));
    EXPECT_TRUE(g.granted);
    co_await sim::Delay{g.airtime};
    b_done = sim.now();
  };
  sim.spawn(pa());
  sim.spawn(pb());
  sim.run();

  // A seizes [0, 100 ms); B waits the full 100 ms, then holds [100, 140 ms).
  EXPECT_EQ(a_done, SimTime::origin() + Duration::ms(100));
  EXPECT_EQ(b_done, SimTime::origin() + Duration::ms(140));
  EXPECT_EQ(ap.stats(a).airtime_wait, Duration::zero());
  EXPECT_EQ(ap.stats(b).airtime_wait, Duration::ms(100));
  EXPECT_EQ(ap.stats(a).grants, 1u);
  EXPECT_EQ(ap.stats(b).grants, 1u);
  EXPECT_EQ(ap.totals().grants, 2u);
  EXPECT_EQ(ap.totals().airtime_wait, Duration::ms(100));
}

TEST(SharedAccessPoint, QueueFullDropsTheExcessBurst) {
  ApConfig cfg = fast_ap();
  cfg.queue_depth = 1;
  sim::Simulator sim;
  SharedAccessPoint ap{sim, cfg};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});
  const std::size_t c = ap.attach("nic_c", Rng{3});

  std::vector<bool> outcomes;
  auto send = [&](std::size_t att) -> Task<void> {
    const Grant g = co_await ap.acquire(att, 1000, Duration::ms(50));
    outcomes.push_back(g.granted);
    if (g.granted) co_await sim::Delay{g.airtime};
  };
  sim.spawn(send(a));  // holds the channel
  sim.spawn(send(b));  // the one allowed waiter
  sim.spawn(send(c));  // queue full: dropped
  sim.run();

  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0]);   // c's verdict lands first (no wait), but order
  EXPECT_FALSE(outcomes[0] && outcomes[1] && outcomes[2]);
  EXPECT_EQ(ap.stats(a).grants, 1u);
  EXPECT_EQ(ap.stats(b).grants, 1u);
  EXPECT_EQ(ap.stats(c).grants, 0u);
  EXPECT_EQ(ap.stats(c).drops, 1u);
  EXPECT_EQ(ap.totals().drops, 1u);
}

TEST(SharedAccessPoint, SlowUplinkStretchesAirtime) {
  ApConfig cfg = fast_ap();
  cfg.bytes_per_second = 1.0e5;  // 100 KB/s uplink
  sim::Simulator sim;
  SharedAccessPoint ap{sim, cfg};
  const std::size_t a = ap.attach("nic", Rng{1});

  Duration airtime;
  auto p = [&]() -> Task<void> {
    // NIC could push 100 KB in 10 ms, but the AP needs a full second.
    const Grant g = co_await ap.acquire(a, 100'000, Duration::ms(10));
    airtime = g.airtime;
  };
  sim.spawn(p());
  sim.run();
  EXPECT_EQ(airtime, Duration::sec(1));
}

TEST(SharedAccessPoint, AirtimeNeverBelowNicWireTime) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, fast_ap()};  // 1 GB/s uplink
  const std::size_t a = ap.attach("nic", Rng{1});

  Duration airtime;
  auto p = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(25));
    airtime = g.airtime;
  };
  sim.spawn(p());
  sim.run();
  EXPECT_EQ(airtime, Duration::ms(25));  // the radio is the bottleneck
}

ApConfig csma_ap() {
  ApConfig cfg = fast_ap();
  cfg.backoff = BackoffPolicy::kCsma;
  cfg.backoff_slot = Duration::from_us(500.0);
  cfg.max_backoff_exponent = 4;
  return cfg;
}

TEST(SharedAccessPoint, CsmaBacksOffThenGrants) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, csma_ap()};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});

  SimTime b_granted;
  auto pa = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(20));
    co_await sim::Delay{g.airtime};
  };
  auto pb = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(b, 1000, Duration::ms(20));
    EXPECT_TRUE(g.granted);
    b_granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  sim.spawn(pa());
  sim.spawn(pb());
  sim.run();

  // B sensed a busy channel, so it backed off at least once and could only
  // seize the channel after A's 20 ms burst ended.
  EXPECT_GE(ap.stats(b).retries, 1u);
  EXPECT_GE(b_granted, SimTime::origin() + Duration::ms(20));
  EXPECT_GE(ap.stats(b).airtime_wait, Duration::ms(20));
  EXPECT_EQ(ap.totals().grants, 2u);
}

TEST(SharedAccessPoint, CsmaIsDeterministicForAFixedSeed) {
  auto run_once = [] {
    sim::Simulator sim;
    SharedAccessPoint ap{sim, csma_ap()};
    const std::size_t a = ap.attach("nic_a", Rng{11});
    const std::size_t b = ap.attach("nic_b", Rng{22});
    const std::size_t c = ap.attach("nic_c", Rng{33});
    auto send = [&](std::size_t att, std::int64_t ms) -> Task<void> {
      const Grant g = co_await ap.acquire(att, 1000, Duration::ms(ms));
      if (g.granted) co_await sim::Delay{g.airtime};
    };
    sim.spawn(send(a, 30));
    sim.spawn(send(b, 20));
    sim.spawn(send(c, 10));
    sim.run();
    struct Outcome {
      std::int64_t wait_a, wait_b, wait_c;
      std::uint64_t retries;
      std::int64_t end;
    };
    return Outcome{ap.stats(a).airtime_wait.count_ns(), ap.stats(b).airtime_wait.count_ns(),
                   ap.stats(c).airtime_wait.count_ns(), ap.totals().retries,
                   sim.now().count_ns()};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.wait_a, second.wait_a);
  EXPECT_EQ(first.wait_b, second.wait_b);
  EXPECT_EQ(first.wait_c, second.wait_c);
  EXPECT_EQ(first.retries, second.retries);
  EXPECT_EQ(first.end, second.end);
}

TEST(SharedAccessPoint, UtilizationIsBusyFractionOfElapsed) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, fast_ap()};
  const std::size_t a = ap.attach("nic", Rng{1});

  auto p = [&]() -> Task<void> {
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(30));
    co_await sim::Delay{g.airtime};
    co_await sim::Delay{Duration::ms(70)};  // idle padding
  };
  sim.spawn(p());
  sim.run();
  // 30 ms busy over a 100 ms run.
  EXPECT_NEAR(ap.utilization(sim.now()), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(ap.utilization(SimTime::origin()), 0.0);
}

TEST(SharedAccessPoint, FreeNowTracksTheReservation) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, fast_ap()};
  const std::size_t a = ap.attach("nic", Rng{1});

  auto p = [&]() -> Task<void> {
    EXPECT_TRUE(ap.free_now());
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(10));
    EXPECT_FALSE(ap.free_now());  // mid-burst
    co_await sim::Delay{g.airtime};
    EXPECT_TRUE(ap.free_now());  // reservation ended exactly now
  };
  sim.spawn(p());
  sim.run();
}

ApConfig windowed_ap(std::int64_t window_ms = 10) {
  ApConfig cfg = fast_ap();
  cfg.reservation_window = Duration::ms(window_ms);
  return cfg;
}

TEST(SharedAccessPointWindowed, BatchesAWindowAndGrantsInRequestTimeOrder) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, windowed_ap()};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});

  SimTime a_granted, b_granted;
  auto pa = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(3)};
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(20));
    EXPECT_TRUE(g.granted);
    a_granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  auto pb = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(1)};
    const Grant g = co_await ap.acquire(b, 1000, Duration::ms(10));
    EXPECT_TRUE(g.granted);
    b_granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  sim.spawn(pa());
  sim.spawn(pb());
  sim.run();

  // Both requests land in the [0, 10 ms) window and arbitrate at 10 ms in
  // (request time, slot, seq) order: B asked at 1 ms so it transmits first,
  // [10, 20 ms); A follows back-to-back, [20, 40 ms).
  EXPECT_EQ(b_granted, SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(a_granted, SimTime::origin() + Duration::ms(20));
  EXPECT_EQ(ap.stats(b).airtime_wait, Duration::ms(9));
  EXPECT_EQ(ap.stats(a).airtime_wait, Duration::ms(17));
  EXPECT_EQ(ap.totals().grants, 2u);
  EXPECT_EQ(ap.pending_requests(), 0u);
}

TEST(SharedAccessPointWindowed, SimultaneousRequestsTieBreakOnTheSlot) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, windowed_ap()};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});

  SimTime a_granted, b_granted;
  auto send = [&](std::size_t att, SimTime& granted) -> Task<void> {
    co_await sim::Delay{Duration::ms(2)};
    const Grant g = co_await ap.acquire(att, 1000, Duration::ms(5));
    granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  // Spawn order must not matter: the lower slot wins the equal-time tie.
  sim.spawn(send(b, b_granted));
  sim.spawn(send(a, a_granted));
  sim.run();
  EXPECT_EQ(a_granted, SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(b_granted, SimTime::origin() + Duration::ms(15));
}

TEST(SharedAccessPointWindowed, BoundaryTimeRequestWaitsForTheNextWindow) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, windowed_ap()};
  const std::size_t a = ap.attach("nic", Rng{1});

  SimTime granted;
  auto p = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(10)};  // ask exactly at the boundary
    const Grant g = co_await ap.acquire(a, 1000, Duration::ms(5));
    EXPECT_TRUE(g.granted);
    granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  sim.spawn(p());
  sim.run();
  // The strict `requested < boundary` filter mirrors that boundary-time model
  // events run before arbitration: the request joins the [10, 20 ms) batch.
  EXPECT_EQ(granted, SimTime::origin() + Duration::ms(20));
  EXPECT_EQ(ap.stats(a).airtime_wait, Duration::ms(10));
}

TEST(SharedAccessPointWindowed, QueueDepthBoundsReservationsPerBoundary) {
  ApConfig cfg = windowed_ap();
  cfg.queue_depth = 1;
  sim::Simulator sim;
  SharedAccessPoint ap{sim, cfg};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});
  const std::size_t c = ap.attach("nic_c", Rng{3});

  int granted = 0, dropped = 0;
  auto send = [&](std::size_t att) -> Task<void> {
    co_await sim::Delay{Duration::ms(1)};
    const Grant g = co_await ap.acquire(att, 1000, Duration::ms(50));
    ++(g.granted ? granted : dropped);
    if (g.granted) co_await sim::Delay{g.airtime};
  };
  sim.spawn(send(a));
  sim.spawn(send(b));
  sim.spawn(send(c));
  sim.run();
  // One reservation fits; the rest of the batch sees a full queue and is
  // refused at the boundary itself, not at some later channel-free time.
  EXPECT_EQ(granted, 1);
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(ap.totals().drops, 2u);
  EXPECT_EQ(ap.stats(a).grants, 1u);  // lowest slot wins the tie
}

TEST(SharedAccessPointWindowed, ChannelIsNeverGrabItNowFree) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, windowed_ap()};
  (void)ap.attach("nic", Rng{1});
  EXPECT_FALSE(ap.free_now());  // idle-listen is deterministic, never a race
  EXPECT_EQ(ap.stats().kind, "shared-ap-windowed");
}

TEST(SharedAccessPointWindowed, KernelLessApArbitratesFromExternalBoundaries) {
  // The sharded runner's shape: no kernel inside the AP, request times come
  // from each attachment's owner simulator, and the harness (here: the test)
  // calls arbitrate_window at every boundary.
  sim::Simulator sim;
  SharedAccessPoint ap{windowed_ap()};
  ap.reserve_attachments(2);
  const std::size_t a = ap.attach_at(0, "nic_a", Rng{1}, sim);
  const std::size_t b = ap.attach_at(1, "nic_b", Rng{2}, sim);

  SimTime a_granted, b_granted;
  auto send = [&](std::size_t att, std::int64_t at_ms, SimTime& granted) -> Task<void> {
    co_await sim::Delay{Duration::ms(at_ms)};
    const Grant g = co_await ap.acquire(att, 1000, Duration::ms(4));
    EXPECT_TRUE(g.granted);
    granted = sim.now();
    co_await sim::Delay{g.airtime};
  };
  sim.spawn(send(a, 3, a_granted));
  sim.spawn(send(b, 1, b_granted));
  sim.run_until(SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(ap.pending_requests(), 2u);
  ap.arbitrate_window(SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(ap.pending_requests(), 0u);
  sim.run();
  EXPECT_EQ(b_granted, SimTime::origin() + Duration::ms(10));
  EXPECT_EQ(a_granted, SimTime::origin() + Duration::ms(14));
  EXPECT_EQ(ap.totals().grants, 2u);
}

TEST(MediumStats, AggregateSnapshotMatchesLegacyAccessors) {
  sim::Simulator sim;
  SharedAccessPoint ap{sim, fast_ap()};
  const std::size_t a = ap.attach("nic_a", Rng{1});
  const std::size_t b = ap.attach("nic_b", Rng{2});

  auto send = [&](std::size_t att, Duration airtime) -> Task<void> {
    const Grant g = co_await ap.acquire(att, 1000, airtime);
    EXPECT_TRUE(g.granted);
    co_await sim::Delay{g.airtime};
  };
  sim.spawn(send(a, Duration::ms(100)));
  sim.spawn(send(b, Duration::ms(40)));
  sim.run();

  const MediumStats s = ap.stats();
  EXPECT_EQ(s.kind, "shared-ap-fifo");
  EXPECT_EQ(s.attachments, 2u);
  EXPECT_EQ(s.pending, 0);
  // The one aggregate snapshot carries what the legacy accessors reported.
  EXPECT_EQ(s.totals.grants, ap.totals().grants);
  EXPECT_EQ(s.totals.airtime_wait, ap.totals().airtime_wait);
  EXPECT_EQ(s.busy_airtime, Duration::ms(140));
  EXPECT_DOUBLE_EQ(ap.utilization(sim.now()),
                   s.busy_airtime.to_seconds() / sim.now().to_seconds());
  EXPECT_EQ(s.next_free, sim.now());  // last reservation ended exactly now

  sim::Simulator sim2;
  IdealMedium ideal;
  (void)ideal.attach("nic", Rng{3});
  const MediumStats is = ideal.stats();
  EXPECT_EQ(is.kind, "ideal");
  EXPECT_EQ(is.attachments, 1u);
  EXPECT_EQ(is.busy_airtime, Duration::zero());
  EXPECT_EQ(is.next_free, SimTime::infinite());
}

}  // namespace
}  // namespace iotsim::net
