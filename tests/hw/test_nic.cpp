#include "hw/nic.h"

#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::NicPowerSpec;
using energy::Routine;
using sim::Duration;
using sim::Task;

NicPowerSpec test_spec() {
  NicPowerSpec spec;
  spec.tx_w = 1.0;
  spec.rx_w = 0.5;
  spec.idle_w = 0.0;
  spec.bytes_per_second = 1.0e6;
  spec.tail = Duration::from_ms(100.0);
  return spec;
}

TEST(Nic, WireTimeFromRate) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  EXPECT_EQ(nic.wire_time(1'000'000), Duration::sec(1));
  EXPECT_EQ(nic.wire_time(10'000), Duration::ms(10));
}

TEST(Nic, TransmitChargesTxPlusTail) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> { co_await nic.transmit(100'000); };  // 100 ms wire
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // 100 ms tx at 1 W + 100 ms tail at rx_w 0.5 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.1 + 0.05, 1e-9);
  EXPECT_EQ(nic.bytes_sent(), 100'000u);
}

TEST(Nic, BackToBackBurstsCoalesceTail) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> {
    co_await nic.transmit(50'000);                // 50 ms
    co_await sim::Delay{Duration::ms(20)};        // inside the tail window
    co_await nic.transmit(50'000);                // 50 ms
    co_await sim::Delay{Duration::ms(200)};       // let the final tail expire
  };
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // tx: 100 ms at 1 W; tails: 20 ms (cut short) + 100 ms at 0.5 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.1 + 0.5 * 0.120, 1e-9);
}

TEST(Nic, ReceiveUsesRxPower) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> { co_await nic.receive(200'000); };  // 200 ms
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.5 * 0.2 + 0.5 * 0.1, 1e-9);
  EXPECT_EQ(nic.bytes_received(), 200'000u);
}

TEST(Nic, IdleAfterTailExpires) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> {
    co_await nic.transmit(1'000);
    co_await sim::Delay{Duration::sec(1)};
  };
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // Energy bounded: 1 ms tx + 100 ms tail only; the remaining ~0.9 s idle at 0 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.001 * 1.0 + 0.1 * 0.5, 1e-9);
}

}  // namespace
}  // namespace iotsim::hw
