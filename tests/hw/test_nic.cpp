#include "hw/nic.h"

#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "net/shared_access_point.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::NicPowerSpec;
using energy::Routine;
using sim::Duration;
using sim::Task;

NicPowerSpec test_spec() {
  NicPowerSpec spec;
  spec.tx_w = 1.0;
  spec.rx_w = 0.5;
  spec.idle_w = 0.0;
  spec.bytes_per_second = 1.0e6;
  spec.tail = Duration::from_ms(100.0);
  return spec;
}

TEST(Nic, WireTimeFromRate) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  EXPECT_EQ(nic.wire_time(1'000'000), Duration::sec(1));
  EXPECT_EQ(nic.wire_time(10'000), Duration::ms(10));
}

TEST(Nic, TransmitChargesTxPlusTail) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> { co_await nic.transmit(100'000); };  // 100 ms wire
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // 100 ms tx at 1 W + 100 ms tail at rx_w 0.5 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.1 + 0.05, 1e-9);
  EXPECT_EQ(nic.bytes_sent(), 100'000u);
}

TEST(Nic, BackToBackBurstsCoalesceTail) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> {
    co_await nic.transmit(50'000);                // 50 ms
    co_await sim::Delay{Duration::ms(20)};        // inside the tail window
    co_await nic.transmit(50'000);                // 50 ms
    co_await sim::Delay{Duration::ms(200)};       // let the final tail expire
  };
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // tx: 100 ms at 1 W; tails: 20 ms (cut short) + 100 ms at 0.5 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.1 + 0.5 * 0.120, 1e-9);
}

TEST(Nic, ReceiveUsesRxPower) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> { co_await nic.receive(200'000); };  // 200 ms
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.5 * 0.2 + 0.5 * 0.1, 1e-9);
  EXPECT_EQ(nic.bytes_received(), 200'000u);
}

TEST(Nic, IdleAfterTailExpires) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Nic nic{sim, acct, "wifi", test_spec()};
  auto p = [&]() -> Task<void> {
    co_await nic.transmit(1'000);
    co_await sim::Delay{Duration::sec(1)};
  };
  sim.spawn(p());
  sim.run();
  nic.power().flush();
  // Energy bounded: 1 ms tx + 100 ms tail only; the remaining ~0.9 s idle at 0 W.
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.001 * 1.0 + 0.1 * 0.5, 1e-9);
}

TEST(Nic, ContentionWaitCoalescesWithAPendingTail) {
  sim::Simulator sim;
  EnergyAccountant acct;
  net::ApConfig cfg;
  cfg.bytes_per_second = 1.0e9;  // never the bottleneck: airtime = nic wire
  cfg.queue_depth = 8;
  net::SharedAccessPoint ap{sim, cfg};
  Nic b{sim, acct, "nic_b", test_spec()};  // component 0
  Nic a{sim, acct, "nic_a", test_spec()};  // component 1
  b.attach_medium(ap, sim::Rng{1});
  a.attach_medium(ap, sim::Rng{2});

  auto pb = [&]() -> Task<void> {
    co_await b.transmit(20'000);            // [0, 20 ms)
    co_await sim::Delay{Duration::ms(30)};  // resume at 50 ms, mid-tail
    co_await b.transmit(50'000);            // channel busy until 120 ms
  };
  auto pa = [&]() -> Task<void> { co_await a.transmit(100'000); };
  sim.spawn(pb());
  sim.spawn(pa());
  sim.run();
  b.power().flush();
  a.power().flush();

  // B: tx [0,20) at 1 W, then one seamless 0.5 W stretch [20,120) — the armed
  // tail coalesces with the contention listen when B re-transmits at 50 ms —
  // then tx [120,170) and a final tail [170,270).
  EXPECT_NEAR(acct.joules(0, Routine::kNetwork), 0.02 + 0.05 + 0.05 + 0.05, 1e-9);
  // A: listens [0,20) at tail power, tx [20,120), tail [120,220).
  EXPECT_NEAR(acct.joules(1, Routine::kNetwork), 0.01 + 0.1 + 0.05, 1e-9);

  ASSERT_NE(b.airtime_stats(), nullptr);
  ASSERT_NE(a.airtime_stats(), nullptr);
  EXPECT_EQ(b.airtime_stats()->airtime_wait, Duration::ms(70));
  EXPECT_EQ(b.airtime_stats()->grants, 2u);
  EXPECT_EQ(a.airtime_stats()->airtime_wait, Duration::ms(20));
  EXPECT_EQ(a.airtime_stats()->grants, 1u);
  EXPECT_EQ(b.bytes_sent(), 70'000u);
  EXPECT_EQ(a.bytes_sent(), 100'000u);
}

TEST(Nic, ReceiveArrivingExactlyAtTailExpiryRestartsTheRadio) {
  auto run = [](bool with_ap) {
    sim::Simulator sim;
    EnergyAccountant acct;
    net::ApConfig cfg;
    cfg.bytes_per_second = 1.0e9;
    net::SharedAccessPoint ap{sim, cfg};
    Nic nic{sim, acct, "wifi", test_spec()};
    if (with_ap) nic.attach_medium(ap, sim::Rng{7});
    auto p = [&]() -> Task<void> {
      co_await nic.transmit(1'000);            // tx [0, 1 ms), tail armed to 101 ms
      co_await sim::Delay{Duration::ms(100)};  // resume exactly as the tail expires
      co_await nic.receive(50'000);            // rx [101, 151 ms)
    };
    sim.spawn(p());
    sim.run();
    nic.power().flush();
    return acct.joules(0, Routine::kNetwork);
  };
  // tx 1 ms at 1 W, one full 100 ms tail, rx 50 ms at 0.5 W, final 100 ms tail.
  const double expected = 0.001 + 0.05 + 0.025 + 0.05;
  EXPECT_NEAR(run(false), expected, 1e-9);
  // An uncontended shared AP must not perturb the trace.
  EXPECT_NEAR(run(true), expected, 1e-9);
}

}  // namespace
}  // namespace iotsim::hw
