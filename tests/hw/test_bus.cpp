#include "hw/bus.h"

#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::Routine;
using sim::Duration;
using sim::Task;

TEST(Bus, OccupyChargesActivePower) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Bus bus{sim, acct, "i2c", energy::BusPowerSpec{0.4, 0.0}};
  auto p = [&]() -> Task<void> {
    co_await bus.occupy(Duration::ms(250), Routine::kDataCollection);
  };
  sim.spawn(p());
  sim.run();
  bus.power().flush();
  EXPECT_NEAR(acct.joules(0, Routine::kDataCollection), 0.4 * 0.25, 1e-12);
  EXPECT_FALSE(bus.busy());
}

TEST(Bus, ConcurrentOccupationsSerialize) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Bus bus{sim, acct, "spi", energy::BusPowerSpec{0.2, 0.0}};
  double done1 = 0.0, done2 = 0.0;
  auto p = [&](double& out) -> Task<void> {
    co_await bus.occupy(Duration::ms(10), Routine::kDataTransfer);
    out = sim.now().to_ms();
  };
  sim.spawn(p(done1));
  sim.spawn(p(done2));
  sim.run();
  EXPECT_DOUBLE_EQ(done1, 10.0);
  EXPECT_DOUBLE_EQ(done2, 20.0);
}

TEST(Bus, IdleDrawsIdlePower) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Bus bus{sim, acct, "uart", energy::BusPowerSpec{0.5, 0.05}};
  auto p = [&]() -> Task<void> { co_await sim::Delay{Duration::sec(1)}; };
  sim.spawn(p());
  sim.run();
  bus.power().flush();
  EXPECT_NEAR(acct.joules(0, Routine::kIdle), 0.05, 1e-12);
}

TEST(Bus, BusyFlagVisibleDuringOccupation) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Bus bus{sim, acct, "b", energy::BusPowerSpec{0.2, 0.0}};
  bool observed_busy = false;
  auto holder = [&]() -> Task<void> { co_await bus.occupy(Duration::ms(10), Routine::kIdle); };
  auto observer = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(5)};
    observed_busy = bus.busy();
  };
  sim.spawn(holder());
  sim.spawn(observer());
  sim.run();
  EXPECT_TRUE(observed_busy);
}

}  // namespace
}  // namespace iotsim::hw
