#include "hw/processor.h"

#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::Routine;
using sim::Duration;
using sim::Task;

ProcessorSpec two_mode_spec() {
  ProcessorSpec spec;
  spec.active_w = 2.0;
  spec.nominal_mips = 1000.0;
  spec.sleep_modes = {
      SleepMode{0.5, Duration::from_ms(1.0), 1.0},   // light: breakeven 0.67 ms
      SleepMode{0.1, Duration::from_ms(10.0), 1.0},  // deep: breakeven 5.26 ms
  };
  return spec;
}

struct Fixture {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor proc{sim, acct, "cpu", two_mode_spec()};

  energy::ComponentId id() const { return 0; }
};

TEST(Processor, ExecuteChargesActiveBusy) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(100), Routine::kComputation);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  // Execution starts asleep (idle hub) so one deep wake precedes it.
  EXPECT_EQ(f.proc.wakeup_count(), 1u);
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kComputation),
              2.0 * 0.1 + 1.0 * 0.010,  // busy + wake transition
              1e-9);
  EXPECT_EQ(f.acct.busy_time(f.id(), Routine::kComputation), Duration::ms(100));
}

TEST(Processor, ExecuteInstructionsUsesNominalMips) {
  Fixture f;
  EXPECT_EQ(f.proc.compute_time(500.0), Duration::from_ms(500.0));  // 1000 MIPS
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute_instructions(100.0, Routine::kComputation);
  };
  f.sim.spawn(p());
  f.sim.run();
  EXPECT_EQ(f.acct.busy_time(f.id(), Routine::kComputation), Duration::ms(100));
}

TEST(Processor, BusyWaitPolicyKeepsActivePower) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    // Wake it up first so the wait starts from active.
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    co_await f.proc.wait(Duration::ms(100), SleepPolicy::kBusyWait, Routine::kDataTransfer);
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  // Waiting at full active power, attributed to DataTransfer, but not busy.
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 2.0 * 0.1, 1e-9);
  EXPECT_EQ(f.acct.busy_time(f.id(), Routine::kDataTransfer), Duration::zero());
  // No wake was needed for the second execute (still active).
  EXPECT_EQ(f.proc.wakeup_count(), 1u);
}

TEST(Processor, LightSleepPolicyDropsPower) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    co_await f.proc.wait(Duration::ms(100), SleepPolicy::kLightSleep, Routine::kDataTransfer);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 0.5 * 0.1, 1e-9);
}

TEST(Processor, DeepSleepPolicyDropsFurther) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    co_await f.proc.wait(Duration::ms(100), SleepPolicy::kDeepSleep, Routine::kComputation);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  // 1 ms busy at 2 W + initial wake 10 ms at 1 W + 100 ms deep at 0.1 W.
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kComputation), 0.002 + 0.01 + 0.01, 1e-9);
}

TEST(Processor, SubBreakevenGapDegradesToBusyWait) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    // 0.5 ms < light-mode break-even (0.667 ms): must not sleep.
    co_await f.proc.wait(Duration::from_ms(0.5), SleepPolicy::kDeepSleep,
                         Routine::kDataTransfer);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 2.0 * 0.0005, 1e-9);
}

TEST(Processor, MidBreakevenGapPicksLightNotDeep) {
  Fixture f;
  auto p = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    // 2 ms: above light break-even (0.667), below deep (5.26) → light.
    co_await f.proc.wait(Duration::ms(2), SleepPolicy::kDeepSleep, Routine::kDataTransfer);
  };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 0.5 * 0.002, 1e-9);
}

TEST(Processor, WakeLatencyDelaysExecution) {
  Fixture f;
  double finished_at = 0.0;
  auto p = [&]() -> Task<void> {
    // Starts deep asleep: pays 10 ms wake, then 5 ms work.
    co_await f.proc.execute(Duration::ms(5), Routine::kComputation);
    finished_at = f.sim.now().to_ms();
  };
  f.sim.spawn(p());
  f.sim.run();
  EXPECT_DOUBLE_EQ(finished_at, 15.0);
}

TEST(Processor, ConcurrentWaitersArbitrateToShallowest) {
  Fixture f;
  auto waiter = [&](SleepPolicy pol) -> Task<void> {
    co_await f.proc.wait(Duration::ms(100), pol, Routine::kDataTransfer);
  };
  f.sim.spawn(waiter(SleepPolicy::kDeepSleep));
  f.sim.spawn(waiter(SleepPolicy::kBusyWait));
  f.sim.run();
  f.proc.power().flush();
  // The busy-waiter pins the processor at active power for the full window.
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 2.0 * 0.1, 1e-9);
}

TEST(Processor, ExecutionsSerialize) {
  Fixture f;
  double done_a = 0.0, done_b = 0.0;
  auto p = [&](double& out) -> Task<void> {
    co_await f.proc.execute(Duration::ms(10), Routine::kComputation);
    out = f.sim.now().to_ms();
  };
  f.sim.spawn(p(done_a));
  f.sim.spawn(p(done_b));
  f.sim.run();
  // First pays the deep wake (10 ms) + 10 ms work; second queues behind it.
  EXPECT_DOUBLE_EQ(done_a, 20.0);
  EXPECT_DOUBLE_EQ(done_b, 30.0);
}

TEST(Processor, IdleHubSleepsDeepWithNoWaiters) {
  Fixture f;
  auto p = [&]() -> Task<void> { co_await sim::Delay{Duration::sec(1)}; };
  f.sim.spawn(p());
  f.sim.run();
  f.proc.power().flush();
  // Whole second in deepest mode, attributed Idle.
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kIdle), 0.1 * 1.0, 1e-9);
}

TEST(Processor, SignalWaitHonoursExpectedGapBreakeven) {
  Fixture f;
  sim::Signal sig;
  auto waiter = [&]() -> Task<void> {
    co_await f.proc.execute(Duration::ms(1), Routine::kComputation);
    co_await f.proc.wait_signal(sig, SleepPolicy::kLightSleep, Routine::kDataTransfer,
                                Duration::ms(50));
  };
  auto notifier = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(51)};
    sig.notify_all();
  };
  f.sim.spawn(waiter());
  f.sim.spawn(notifier());
  f.sim.run();
  f.proc.power().flush();
  // 50 ms (from t=11 after wake+exec... just check power dropped): the wait
  // spans t∈[11,51] at light-sleep power.
  EXPECT_NEAR(f.acct.joules(f.id(), Routine::kDataTransfer), 0.5 * 0.040, 1e-9);
}

}  // namespace
}  // namespace iotsim::hw
