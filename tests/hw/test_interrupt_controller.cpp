#include "hw/interrupt_controller.h"

#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::Routine;
using sim::Duration;
using sim::Task;

struct Fixture {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor cpu{sim, acct, "cpu",
                ProcessorSpec{2.0, 0.0, {SleepMode{0.5, Duration::from_ms(1.0), 1.0}}, 1000.0}};
  Processor mcu{sim, acct, "mcu", ProcessorSpec{1.0, 0.0, {}, 100.0}};
  InterruptController irq{cpu, mcu, Duration::from_us(10), Duration::from_us(100)};
};

TEST(InterruptController, RaiseThenDispatchRoundTrip) {
  Fixture f;
  const IrqLine line = f.irq.allocate_line("accel");
  double dispatched_at = -1.0;
  auto cpu_side = [&]() -> Task<void> {
    co_await f.irq.wait_and_dispatch(line, SleepPolicy::kBusyWait, Routine::kDataTransfer,
                                     Duration::ms(1));
    dispatched_at = f.sim.now().to_ms();
  };
  auto mcu_side = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(5)};
    co_await f.irq.raise(line);
  };
  f.sim.spawn(cpu_side());
  f.sim.spawn(mcu_side());
  f.sim.run();
  EXPECT_EQ(f.irq.raised_count(), 1u);
  EXPECT_EQ(f.irq.dispatched_count(), 1u);
  // 5 ms delay + 10 us raise + 100 us dispatch (CPU was busy-waiting: no
  // wake latency).
  EXPECT_NEAR(dispatched_at, 5.11, 1e-9);
  EXPECT_EQ(f.irq.pending(line), 0);
}

TEST(InterruptController, PendingInterruptDispatchesWithoutWaiting) {
  Fixture f;
  const IrqLine line = f.irq.allocate_line("l");
  double dispatched_at = -1.0;
  auto mcu_side = [&]() -> Task<void> { co_await f.irq.raise(line); };
  auto cpu_side = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(10)};  // arrive after the raise
    co_await f.irq.wait_and_dispatch(line, SleepPolicy::kBusyWait, Routine::kDataTransfer,
                                     Duration::ms(1));
    dispatched_at = f.sim.now().to_ms();
  };
  f.sim.spawn(mcu_side());
  f.sim.spawn(cpu_side());
  f.sim.run();
  // No signal wait happens (the interrupt is already pending), but the CPU
  // idled asleep for the 10 ms and pays its 1 ms wake before dispatching.
  EXPECT_NEAR(dispatched_at, 11.1, 1e-9);
}

TEST(InterruptController, CountsManyInterrupts) {
  Fixture f;
  const IrqLine line = f.irq.allocate_line("l");
  constexpr int kN = 50;
  auto mcu_side = [&]() -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await sim::Delay{Duration::ms(1)};
      co_await f.irq.raise(line);
    }
  };
  auto cpu_side = [&]() -> Task<void> {
    for (int i = 0; i < kN; ++i) {
      co_await f.irq.wait_and_dispatch(line, SleepPolicy::kBusyWait, Routine::kDataTransfer,
                                       Duration::ms(1));
    }
  };
  f.sim.spawn(mcu_side());
  f.sim.spawn(cpu_side());
  f.sim.run();
  EXPECT_EQ(f.irq.raised_count(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(f.irq.dispatched_count(), static_cast<std::uint64_t>(kN));
  // Dispatch cost accrues on the CPU under kInterrupt.
  EXPECT_EQ(f.acct.busy_time(0, Routine::kInterrupt), Duration::us(100) * kN);
  // Raise cost accrues on the MCU under kInterrupt.
  EXPECT_EQ(f.acct.busy_time(1, Routine::kInterrupt), Duration::us(10) * kN);
}

TEST(InterruptController, SeparateLinesAreIndependent) {
  Fixture f;
  const IrqLine a = f.irq.allocate_line("a");
  const IrqLine b = f.irq.allocate_line("b");
  int a_handled = 0, b_handled = 0;
  auto mcu_side = [&]() -> Task<void> {
    co_await f.irq.raise(a);
    co_await f.irq.raise(a);
    co_await f.irq.raise(b);
  };
  auto cpu_a = [&]() -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      co_await f.irq.wait_and_dispatch(a, SleepPolicy::kBusyWait, Routine::kDataTransfer,
                                       Duration::ms(1));
      ++a_handled;
    }
  };
  auto cpu_b = [&]() -> Task<void> {
    co_await f.irq.wait_and_dispatch(b, SleepPolicy::kBusyWait, Routine::kDataTransfer,
                                     Duration::ms(1));
    ++b_handled;
  };
  f.sim.spawn(mcu_side());
  f.sim.spawn(cpu_a());
  f.sim.spawn(cpu_b());
  f.sim.run();
  EXPECT_EQ(a_handled, 2);
  EXPECT_EQ(b_handled, 1);
}

TEST(InterruptController, SleepingCpuPaysWakeLatency) {
  Fixture f;
  const IrqLine line = f.irq.allocate_line("l");
  double dispatched_at = -1.0;
  auto cpu_side = [&]() -> Task<void> {
    co_await f.irq.wait_and_dispatch(line, SleepPolicy::kLightSleep, Routine::kDataTransfer,
                                     Duration::ms(100));
    dispatched_at = f.sim.now().to_ms();
  };
  auto mcu_side = [&]() -> Task<void> {
    co_await sim::Delay{Duration::ms(50)};
    co_await f.irq.raise(line);
  };
  f.sim.spawn(cpu_side());
  f.sim.spawn(mcu_side());
  f.sim.run();
  // 50 ms + 10 us raise + 1 ms wake + 100 us dispatch.
  EXPECT_NEAR(dispatched_at, 51.11, 1e-9);
  EXPECT_EQ(f.cpu.wakeup_count(), 1u);
}

}  // namespace
}  // namespace iotsim::hw
