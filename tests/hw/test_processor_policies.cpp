// Deeper Processor-policy tests: policy_for_gap, IdleConstraint semantics,
// the busy/wait power split, and the hub's DMA transfer path.
#include <gtest/gtest.h>

#include "energy/energy_accountant.h"
#include "hw/iot_hub.h"
#include "hw/processor.h"
#include "sim/simulator.h"

namespace iotsim::hw {
namespace {

using energy::EnergyAccountant;
using energy::Routine;
using sim::Duration;
using sim::Task;

ProcessorSpec split_spec() {
  ProcessorSpec spec;
  spec.active_w = 2.0;  // stalled
  spec.busy_w = 3.0;    // executing
  spec.nominal_mips = 1000.0;
  spec.sleep_modes = {
      SleepMode{0.5, Duration::from_ms(1.0), 1.0},
      SleepMode{0.1, Duration::from_ms(10.0), 1.0},
  };
  return spec;
}

TEST(PolicyForGap, ChoosesDeepestAffordableMode) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor p{sim, acct, "cpu", split_spec()};
  // Break-evens: light = 1·1ms/(2−0.5) = 0.667 ms; deep = 1·10ms/1.9 = 5.26 ms.
  EXPECT_EQ(p.policy_for_gap(Duration::from_ms(0.5)), SleepPolicy::kBusyWait);
  EXPECT_EQ(p.policy_for_gap(Duration::from_ms(1.0)), SleepPolicy::kLightSleep);
  EXPECT_EQ(p.policy_for_gap(Duration::from_ms(5.0)), SleepPolicy::kLightSleep);
  EXPECT_EQ(p.policy_for_gap(Duration::from_ms(6.0)), SleepPolicy::kDeepSleep);
  // Cap honoured.
  EXPECT_EQ(p.policy_for_gap(Duration::sec(10), SleepPolicy::kLightSleep),
            SleepPolicy::kLightSleep);
  EXPECT_EQ(p.policy_for_gap(Duration::sec(10), SleepPolicy::kBusyWait),
            SleepPolicy::kBusyWait);
}

TEST(IdleConstraint, PinsProcessorWhileAlive) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor p{sim, acct, "cpu", split_spec()};
  auto proc = [&]() -> Task<void> {
    {
      auto pin = p.constrain_idle(SleepPolicy::kBusyWait, Routine::kDataTransfer);
      co_await sim::Delay{Duration::ms(100)};  // pinned: active wait, 2 W
      pin.release();
    }
    co_await sim::Delay{Duration::ms(100)};  // unpinned: deepest sleep, 0.1 W
  };
  sim.spawn(proc());
  sim.run();
  p.power().flush();
  EXPECT_NEAR(acct.joules(0, Routine::kDataTransfer), 2.0 * 0.1, 1e-9);
  EXPECT_NEAR(acct.joules(0, Routine::kIdle), 0.1 * 0.1, 1e-9);
}

TEST(IdleConstraint, ReleaseIsIdempotentAndMoveSafe) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor p{sim, acct, "cpu", split_spec()};
  auto proc = [&]() -> Task<void> {
    auto pin = p.constrain_idle(SleepPolicy::kLightSleep, Routine::kComputation);
    auto moved = std::move(pin);
    moved.release();
    moved.release();  // no double-erase
    co_await sim::Delay{Duration::ms(10)};
  };
  sim.spawn(proc());
  sim.run();
  SUCCEED();
}

TEST(BusyWaitSplit, ExecutionDrawsMoreThanStall) {
  sim::Simulator sim;
  EnergyAccountant acct;
  Processor p{sim, acct, "cpu", split_spec()};
  auto proc = [&]() -> Task<void> {
    co_await p.execute(Duration::ms(100), Routine::kComputation);
    co_await p.wait(Duration::ms(100), SleepPolicy::kBusyWait, Routine::kDataTransfer);
  };
  sim.spawn(proc());
  sim.run();
  p.power().flush();
  // Execute at busy_w = 3 W (plus the initial deep wake at 1 W for 10 ms);
  // stall at active_w = 2 W.
  EXPECT_NEAR(acct.joules(0, Routine::kComputation), 3.0 * 0.1 + 1.0 * 0.01, 1e-9);
  EXPECT_NEAR(acct.joules(0, Routine::kDataTransfer), 2.0 * 0.1, 1e-9);
}

TEST(DmaTransfer, CpuSleepsDuringWireTime) {
  sim::Simulator sim;
  EnergyAccountant acct;
  HubSpec spec = default_hub_spec();
  spec.dma_enabled = true;
  IotHub hub{sim, acct, spec};
  auto proc = [&]() -> Task<void> {
    // Big transfer: 12 KB ≈ 100 ms of wire time.
    co_await hub.transfer_to_cpu(12000, Routine::kDataTransfer);
  };
  sim.spawn(proc());
  sim.run();
  hub.flush_power();
  // CPU busy only for the DMA setup, not the wire time.
  EXPECT_LT(acct.busy_time(0, Routine::kDataTransfer), sim::Duration::from_ms(1.0));
  // The MCU was never involved.
  EXPECT_NEAR(acct.joules(1, Routine::kDataTransfer), 0.0, 1e-12);
}

TEST(DmaTransfer, CheaperThanPioForBulk) {
  auto run_once = [](bool dma) {
    sim::Simulator sim;
    EnergyAccountant acct;
    HubSpec spec = default_hub_spec();
    spec.dma_enabled = dma;
    IotHub hub{sim, acct, spec};
    auto proc = [&]() -> Task<void> {
      co_await hub.transfer_to_cpu(24000, Routine::kDataTransfer);
    };
    sim.spawn(proc());
    sim.run();
    hub.flush_power();
    return acct.total_joules();
  };
  EXPECT_LT(run_once(true), run_once(false) * 0.7);
}

}  // namespace
}  // namespace iotsim::hw
