#include "hw/iot_hub.h"

#include <gtest/gtest.h>

#include "energy/energy_report.h"
#include "sim/simulator.h"
#include "trace/power_trace.h"

namespace iotsim::hw {
namespace {

using energy::Routine;
using sim::Duration;
using sim::Task;

TEST(IotHub, IdleHubDrawsOnlyFloorPower) {
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  IotHub hub{sim, acct, default_hub_spec()};
  auto p = [&]() -> Task<void> { co_await sim::Delay{Duration::sec(10)}; };
  sim.spawn(p());
  sim.run();
  hub.flush_power();

  const auto report = energy::EnergyReport::from_accountant(acct, Duration::sec(10));
  const auto& spec = hub.spec();
  const double expected_idle_w = spec.cpu.deep_sleep_w + spec.mcu.sleep_w +
                                 spec.main_board_base_w + spec.mcu_board_base_w;
  EXPECT_NEAR(report.average_watts(), expected_idle_w, 1e-9);
  // Everything is attributed to Idle.
  EXPECT_NEAR(report.joules(Routine::kIdle), report.total_joules(), 1e-12);
}

TEST(IotHub, TransferOccupiesCpuMcuAndLink) {
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  IotHub hub{sim, acct, default_hub_spec()};
  double done_at = -1.0;
  auto p = [&]() -> Task<void> {
    co_await hub.transfer_to_cpu(12000, Routine::kDataTransfer);
    done_at = sim.now().to_ms();
  };
  sim.spawn(p());
  sim.run();
  hub.flush_power();

  const double expected_ms = hub.spec().transfer_time(12000).to_ms();
  // Both processors start asleep; the slower wake (CPU deep, 10 ms) gates
  // the start of the joint transfer.
  EXPECT_NEAR(done_at, expected_ms + hub.spec().cpu.deep_wake_latency.to_ms(), 1e-6);

  // CPU and MCU busy times match the transfer duration.
  EXPECT_NEAR(acct.busy_time(0, Routine::kDataTransfer).to_ms(), expected_ms, 1e-6);
  EXPECT_NEAR(acct.busy_time(1, Routine::kDataTransfer).to_ms(), expected_ms, 1e-6);
}

TEST(IotHub, PioBusesAreStableAndTraced) {
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  IotHub hub{sim, acct, default_hub_spec()};
  Bus& a = hub.add_pio_bus("accel");
  Bus& b = hub.add_pio_bus("sound");
  EXPECT_EQ(a.name(), "pio_accel");
  EXPECT_EQ(b.name(), "pio_sound");

  trace::PowerTrace trace;
  hub.attach_trace(trace);
  auto p = [&]() -> Task<void> {
    co_await a.occupy(Duration::ms(10), Routine::kDataCollection);
  };
  sim.spawn(p());
  sim.run();
  hub.flush_power();
  EXPECT_GT(trace.segment_count(), 0u);
}

TEST(IotHub, ConservationAcrossAllComponents) {
  sim::Simulator sim;
  energy::EnergyAccountant acct;
  IotHub hub{sim, acct, default_hub_spec()};
  auto p = [&]() -> Task<void> {
    co_await hub.cpu().execute(Duration::ms(50), Routine::kComputation);
    co_await hub.transfer_to_cpu(1000, Routine::kDataTransfer);
    co_await hub.mcu().execute(Duration::ms(20), Routine::kDataCollection);
  };
  sim.spawn(p());
  sim.run();
  hub.flush_power();

  const auto elapsed = sim.now() - sim::SimTime::origin();
  const auto report = energy::EnergyReport::from_accountant(acct, elapsed);
  double routine_sum = 0.0;
  for (Routine r : energy::kAllRoutines) routine_sum += report.joules(r);
  EXPECT_NEAR(routine_sum, report.total_joules(), 1e-9);
  EXPECT_NEAR(report.total_joules(), acct.total_joules(), 1e-9);
}

}  // namespace
}  // namespace iotsim::hw
