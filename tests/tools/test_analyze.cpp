// iotsim_analyze coverage: the tokenizer/scope layer, every semantic pass
// against seeded + corrected fixtures (ANALYZE_FIXTURE_DIR), the rule
// catalogue's sync with tools/iotsim_lint.conf (ANALYZE_CONF_PATH), file
// collection rules, and hash-coverage against the real tree
// (IOTSIM_SRC_DIR) — including the contract that deleting a hashed
// field's append line makes the pass fail.
#include "analyze/analyze.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace iotsim::analyze {
namespace {

const Config kEmpty;

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path{ANALYZE_FIXTURE_DIR} / name;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in{p, std::ios::binary};
  EXPECT_TRUE(in) << "cannot open " << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

FileUnit unit_of(const std::filesystem::path& p) {
  return make_unit(p.generic_string(), read_file(p));
}

std::vector<Finding> run_rule(const std::vector<FileUnit>& units, std::string_view rule) {
  const std::vector<std::string> only{std::string{rule}};
  return analyze_units(units, kEmpty, only);
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

// --- tokenizer / scope layer -------------------------------------------

TEST(AnalyzeSyntax, MergesTwoCharOperatorsAndTracksLines) {
  const auto toks = tokenize("a::b->c;\nx >= 1'000;\n");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_TRUE(is_punct(toks[1], "::"));
  EXPECT_TRUE(is_punct(toks[3], "->"));
  EXPECT_TRUE(is_punct(toks[7], ">="));
  EXPECT_EQ(toks[7].line, 2);
  EXPECT_EQ(toks[8].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[8].text, "1'000");
}

TEST(AnalyzeSyntax, SwallowsPreprocessorLines) {
  const auto toks = tokenize("#define BAD int hidden = 1; \\\n  still hidden\nint live;\n");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_TRUE(is_ident(toks[0], "int"));
  EXPECT_TRUE(is_ident(toks[1], "live"));
}

TEST(AnalyzeSyntax, ClassifiesBlocksAndFindsEnclosingFunction) {
  const std::string src =
      "namespace ns {\n"
      "struct S { int f; };\n"
      "int fn(int a) {\n"
      "  if (a) { return a; }\n"
      "  auto lam = [a]() { return a; };\n"
      "  return 0;\n"
      "}\n"
      "}  // namespace ns\n";
  const auto toks = tokenize(src);
  const ScopeMap scopes = map_scopes(toks);
  ASSERT_EQ(scopes.blocks.size(), 5u);
  EXPECT_EQ(scopes.blocks[0].kind, BlockKind::kNamespace);
  EXPECT_EQ(scopes.blocks[1].kind, BlockKind::kType);
  EXPECT_EQ(scopes.blocks[2].kind, BlockKind::kFunction);  // fn
  EXPECT_EQ(scopes.blocks[3].kind, BlockKind::kControl);   // if
  EXPECT_EQ(scopes.blocks[4].kind, BlockKind::kFunction);  // lambda
  EXPECT_TRUE(scopes.at_namespace_scope(0));
  EXPECT_FALSE(scopes.at_namespace_scope(2));
  EXPECT_EQ(scopes.enclosing_function(3), 2);  // if body belongs to fn
  EXPECT_EQ(scopes.enclosing_function(4), 4);  // lambda is its own function
  EXPECT_EQ(function_name(toks, scopes.blocks[2]), "fn");
  EXPECT_TRUE(lambda_capture_range(toks, scopes.blocks[4]).has_value());
  EXPECT_FALSE(lambda_capture_range(toks, scopes.blocks[2]).has_value());
}

// --- coro-dangling-ref --------------------------------------------------

TEST(AnalyzeCoro, FlagsEverySeededViolation) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("coro_bad.cpp")));
  const auto findings = run_rule(units, kRuleCoroDanglingRef);
  ASSERT_EQ(findings.size(), 4u);
  // ref, iterator, pointer uses after co_await; by-ref lambda capture.
  EXPECT_EQ(findings[0].line, 14);
  EXPECT_NE(findings[0].detail.find("'first'"), std::string::npos);
  EXPECT_EQ(findings[1].line, 15);
  EXPECT_NE(findings[1].detail.find("iterator"), std::string::npos);
  EXPECT_EQ(findings[2].line, 22);
  EXPECT_NE(findings[2].detail.find("pointer"), std::string::npos);
  EXPECT_EQ(findings[3].line, 26);
  EXPECT_NE(findings[3].detail.find("captures by reference"), std::string::npos);
}

TEST(AnalyzeCoro, SilentOnCorrectedForms) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("coro_clean.cpp")));
  EXPECT_TRUE(run_rule(units, kRuleCoroDanglingRef).empty());
}

// --- shared-mutable-static ----------------------------------------------

TEST(AnalyzeState, FlagsEverySeededViolation) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("state_bad.cpp")));
  const auto findings = run_rule(units, kRuleSharedMutableStatic);
  ASSERT_EQ(findings.size(), 4u);
  const char* names[] = {"g_window_count", "g_last_label", "live_hubs", "calls"};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(findings[i].detail.find(names[i]), std::string::npos) << findings[i].detail;
  }
}

TEST(AnalyzeState, SilentOnConstSynchronizedAndThreadLocal) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("state_clean.cpp")));
  EXPECT_TRUE(run_rule(units, kRuleSharedMutableStatic).empty());
}

// --- unordered-iteration / pointer-order --------------------------------

TEST(AnalyzeOrder, JoinsHeaderDeclarationsWithCppLoops) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("order_registry.h")));
  units.push_back(unit_of(fixture("order_bad.cpp")));
  const auto findings = analyze_units(units, kEmpty);
  EXPECT_EQ(count_rule(findings, kRuleUnorderedIteration), 2);
  EXPECT_EQ(count_rule(findings, kRulePointerOrder), 3);
  // The member loop is only detectable through the cross-file join.
  const auto member = std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
    return f.detail.find("joules_by_owner_") != std::string::npos;
  });
  ASSERT_NE(member, findings.end());
  EXPECT_NE(member->file.find("order_bad.cpp"), std::string::npos);
}

TEST(AnalyzeOrder, SilentOnOrderedSnapshotsAndStableKeys) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("order_registry.h")));
  units.push_back(unit_of(fixture("order_clean.cpp")));
  const auto findings = analyze_units(units, kEmpty);
  EXPECT_EQ(count_rule(findings, kRuleUnorderedIteration), 0);
  EXPECT_EQ(count_rule(findings, kRulePointerOrder), 0);
}

// --- hash-coverage ------------------------------------------------------

TEST(AnalyzeHash, ReportsFieldMissingFromKey) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("hash_structs.h")));
  units.push_back(unit_of(fixture("hash_key.cpp")));
  const auto findings = run_rule(units, kRuleHashCoverage);
  // Exactly the seeded gap: fresh_knob is mentioned in unrelated() but
  // never inside scenario_key()'s call graph.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("'fresh_knob'"), std::string::npos);
  EXPECT_NE(findings[0].detail.find("'Scenario'"), std::string::npos);
}

TEST(AnalyzeHash, SilentOnceFieldIsAppended) {
  std::string patched = read_file(fixture("hash_key.cpp"));
  const std::string anchor = "return s.take();";
  const std::size_t at = patched.find(anchor);
  ASSERT_NE(at, std::string::npos);
  patched.insert(at, "s.add(sc.fresh_knob);\n  ");
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("hash_structs.h")));
  units.push_back(make_unit("hash_key_patched.cpp", patched));
  EXPECT_TRUE(run_rule(units, kRuleHashCoverage).empty());
}

TEST(AnalyzeHash, GuardsAgainstScansWithoutTheKeyFunction) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("hash_structs.h")));
  const auto findings = run_rule(units, kRuleHashCoverage);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("no scenario_key() definition"), std::string::npos);
}

// --- hash-coverage over the real tree -----------------------------------

std::vector<std::filesystem::path> real_tree_files() {
  const std::filesystem::path src{IOTSIM_SRC_DIR};
  return {src / "core/sweep.cpp",       src / "core/scenario.h",
          src / "net/config.h",         src / "env/environment.h",
          src / "hw/boards.h",          src / "sensors/sensor_catalog.h"};
}

TEST(AnalyzeHashRealTree, EveryScenarioFieldReachesTheKey) {
  std::vector<FileUnit> units;
  for (const auto& p : real_tree_files()) units.push_back(unit_of(p));
  const auto findings = run_rule(units, kRuleHashCoverage);
  EXPECT_TRUE(findings.empty()) << (findings.empty() ? std::string{} : findings[0].detail);
}

// Removes the append/encode line(s) that mention `field_ref` — lines whose
// trimmed text starts with `prefix` ("s." for scenario_key's sink, "w." for
// the result codec's writer) — leaving the rest intact.
std::string drop_append_lines(const std::string& content, const std::string& prefix,
                              const std::string& field_ref) {
  std::istringstream in{content};
  std::string out;
  std::string line;
  int dropped = 0;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t");
    const bool is_append =
        first != std::string::npos && line.compare(first, prefix.size(), prefix) == 0;
    if (is_append && line.find(field_ref) != std::string::npos) {
      ++dropped;
      continue;
    }
    out += line;
    out += '\n';
  }
  EXPECT_GT(dropped, 0) << "no " << prefix << " line mentions " << field_ref;
  return out;
}

std::string drop_hash_lines(const std::string& content, const std::string& field_ref) {
  return drop_append_lines(content, "s.", field_ref);
}

TEST(AnalyzeHashRealTree, DeletingAHashedFieldLineFails) {
  const std::string sweep = read_file(std::filesystem::path{IOTSIM_SRC_DIR} / "core/sweep.cpp");
  struct Probe {
    const char* ref;   // the expression on the append line
    const char* name;  // the struct field the pass must report
  };
  for (const Probe probe : {Probe{"sc.scheme", "scheme"},
                            Probe{"sc.windows", "windows"},
                            Probe{"sc.mcu_speed_factor", "mcu_speed_factor"},
                            Probe{"sc.network->reservation_window", "reservation_window"}}) {
    std::vector<FileUnit> units;
    for (const auto& p : real_tree_files()) {
      if (p.filename() == "sweep.cpp") {
        units.push_back(make_unit(p.generic_string(), drop_hash_lines(sweep, probe.ref)));
      } else {
        units.push_back(unit_of(p));
      }
    }
    const auto findings = run_rule(units, kRuleHashCoverage);
    ASSERT_EQ(findings.size(), 1u) << "deleting " << probe.ref << " went undetected";
    EXPECT_NE(findings[0].detail.find(std::string{"'"} + probe.name + "'"), std::string::npos)
        << findings[0].detail;
  }
}

// --- codec-coverage -----------------------------------------------------

TEST(AnalyzeCodec, ReportsFieldMissingFromCodec) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("codec_structs.h")));
  units.push_back(unit_of(fixture("codec_enc.cpp")));
  const auto findings = run_rule(units, kRuleCodecCoverage);
  // Exactly the seeded gap: fresh_metric is mentioned in decode_result()
  // and unrelated() but never inside encode_result()'s call graph.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("'fresh_metric'"), std::string::npos);
  EXPECT_NE(findings[0].detail.find("'ScenarioResult'"), std::string::npos);
}

TEST(AnalyzeCodec, SilentOnceFieldIsEncoded) {
  std::string patched = read_file(fixture("codec_enc.cpp"));
  const std::string anchor = "return w.take();";
  const std::size_t at = patched.find(anchor);
  ASSERT_NE(at, std::string::npos);
  patched.insert(at, "w.add(r.fresh_metric);\n  ");
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("codec_structs.h")));
  units.push_back(make_unit("codec_enc_patched.cpp", patched));
  EXPECT_TRUE(run_rule(units, kRuleCodecCoverage).empty());
}

TEST(AnalyzeCodec, GuardsAgainstScansWithoutTheEncoder) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("codec_structs.h")));
  const auto findings = run_rule(units, kRuleCodecCoverage);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].detail.find("no encode_result() definition"), std::string::npos);
}

// --- codec-coverage over the real tree ----------------------------------

std::vector<std::filesystem::path> codec_tree_files() {
  const std::filesystem::path src{IOTSIM_SRC_DIR};
  return {src / "cache/result_codec.cpp",   src / "core/reports.h",
          src / "core/qos.h",               src / "core/offload_planner.h",
          src / "core/scenario.h",          src / "energy/energy_accountant.h",
          src / "energy/energy_report.h",   src / "env/hub_environment.h"};
}

TEST(AnalyzeCodecRealTree, EveryResultFieldReachesTheCodec) {
  std::vector<FileUnit> units;
  for (const auto& p : codec_tree_files()) units.push_back(unit_of(p));
  const auto findings = run_rule(units, kRuleCodecCoverage);
  EXPECT_TRUE(findings.empty()) << (findings.empty() ? std::string{} : findings[0].detail);
}

TEST(AnalyzeCodecRealTree, DeletingAnEncodedFieldLineFails) {
  const std::string codec =
      read_file(std::filesystem::path{IOTSIM_SRC_DIR} / "cache/result_codec.cpp");
  struct Probe {
    const char* ref;   // the expression on the encode line
    const char* name;  // the struct field the pass must report
  };
  // Probes picked from structs with unique field names — the pass is
  // identifier-based, so a field spelled the same on two structs (e.g.
  // cpu_wakeups) would stay "covered" by the other struct's encode line.
  for (const Probe probe : {Probe{"r.scheme", "scheme"},
                            Probe{"h.airtime_grants", "airtime_grants"},
                            Probe{"q.worst_sample_jitter", "worst_sample_jitter"},
                            Probe{"p.mcu_ram_used", "mcu_ram_used"},
                            Probe{"a.uptime_fraction", "uptime_fraction"},
                            Probe{"a.heap_peak_bytes", "heap_peak_bytes"}}) {
    std::vector<FileUnit> units;
    for (const auto& p : codec_tree_files()) {
      if (p.filename() == "result_codec.cpp") {
        units.push_back(
            make_unit(p.generic_string(), drop_append_lines(codec, "w.", probe.ref)));
      } else {
        units.push_back(unit_of(p));
      }
    }
    const auto findings = run_rule(units, kRuleCodecCoverage);
    ASSERT_EQ(findings.size(), 1u) << "deleting " << probe.ref << " went undetected";
    EXPECT_NE(findings[0].detail.find(std::string{"'"} + probe.name + "'"), std::string::npos)
        << findings[0].detail;
  }
}

// --- framework: legacy pass, filtering, allowlist, ordering -------------

TEST(AnalyzeFramework, LegacyLexicalRulesRunThroughTheFramework) {
  std::vector<FileUnit> units;
  units.push_back(make_unit("probe.cpp", "int x = rand();\n"));
  const auto findings = run_rule(units, lint::kRuleLibcRand);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, lint::kRuleLibcRand);
  // And the same unit trips a semantic pass too: one framework, one walk.
  EXPECT_EQ(run_rule(units, kRuleSharedMutableStatic).size(), 1u);
}

TEST(AnalyzeFramework, RuleFilterRestrictsOutput) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("order_registry.h")));
  units.push_back(unit_of(fixture("order_bad.cpp")));
  const std::vector<std::string> only{std::string{kRulePointerOrder}};
  const auto findings = analyze_units(units, kEmpty, only);
  ASSERT_FALSE(findings.empty());
  for (const auto& f : findings) EXPECT_EQ(f.rule, kRulePointerOrder);
}

TEST(AnalyzeFramework, AllowlistSuppressesSemanticFindings) {
  std::istringstream conf{"allow unordered-iteration order_bad.cpp\n"};
  const Config cfg = lint::parse_config(conf, all_rule_ids());
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("order_registry.h")));
  units.push_back(unit_of(fixture("order_bad.cpp")));
  const auto findings = analyze_units(units, cfg);
  EXPECT_EQ(count_rule(findings, kRuleUnorderedIteration), 0);
  EXPECT_EQ(count_rule(findings, kRulePointerOrder), 3);  // untouched
}

TEST(AnalyzeFramework, SemanticRuleIdsNeedTheExtendedRegistry) {
  std::istringstream semantic{"allow unordered-iteration foo\n"};
  EXPECT_THROW(lint::parse_config(semantic), std::runtime_error);  // legacy registry
  std::istringstream again{"allow unordered-iteration foo\n"};
  EXPECT_NO_THROW(lint::parse_config(again, all_rule_ids()));
}

TEST(AnalyzeFramework, FindingsAreSorted) {
  std::vector<FileUnit> units;
  units.push_back(unit_of(fixture("order_bad.cpp")));
  units.push_back(unit_of(fixture("state_bad.cpp")));
  units.push_back(unit_of(fixture("order_registry.h")));
  const auto findings = analyze_units(units, kEmpty);
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                             }));
}

// --- CLI surfaces: --list-rules text, JSON, conf catalogue sync ---------

TEST(AnalyzeCatalogue, ListsEveryRuleExactlyOnce) {
  const auto ids = all_rule_ids();
  EXPECT_EQ(ids.size(), 13u);
  std::vector<std::string_view> unique(ids.begin(), ids.end());
  std::sort(unique.begin(), unique.end());
  EXPECT_EQ(std::adjacent_find(unique.begin(), unique.end()), unique.end());
  const std::string text = list_rules_text();
  for (const std::string_view id : ids) {
    EXPECT_NE(text.find(id), std::string::npos) << "missing " << id;
  }
}

TEST(AnalyzeCatalogue, ConfHeaderMatchesTheCatalogue) {
  std::ifstream in{ANALYZE_CONF_PATH};
  ASSERT_TRUE(in) << "cannot open " << ANALYZE_CONF_PATH;
  std::vector<std::pair<std::string, std::string>> documented;
  std::string line;
  bool in_block = false;
  while (std::getline(in, line)) {
    if (line == "# Rules:") {
      in_block = true;
      continue;
    }
    if (!in_block) continue;
    if (line.rfind("#   ", 0) != 0) break;  // block ends at the first other line
    const std::string entry = line.substr(4);
    const std::size_t colon = entry.find(": ");
    ASSERT_NE(colon, std::string::npos) << "malformed catalogue line: " << line;
    documented.emplace_back(entry.substr(0, colon), entry.substr(colon + 2));
  }
  const auto catalogue = rule_catalogue();
  ASSERT_EQ(documented.size(), catalogue.size())
      << "tools/iotsim_lint.conf's '# Rules:' block is out of date — regenerate "
         "it from `iotsim_analyze --list-rules`";
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    EXPECT_EQ(documented[i].first, catalogue[i].id);
    EXPECT_EQ(documented[i].second, catalogue[i].summary);
  }
}

TEST(AnalyzeJson, EscapesAndOrdersFindings) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"a.cpp", 3, "pointer-order", "uses \"get\"\there"});
  const std::string json = to_json(findings);
  EXPECT_NE(json.find("\"file\": \"a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("uses \\\"get\\\"\\there"), std::string::npos);
  EXPECT_EQ(to_json({}), "[\n]\n");
}

// --- file collection ----------------------------------------------------

class CollectFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path{::testing::TempDir()} / "iotsim_analyze_collect";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src/core");
    std::filesystem::create_directories(root_ / "build/gen");
    std::filesystem::create_directories(root_ / ".git");
    std::filesystem::create_directories(root_ / "third_party/vendor");
    write(root_ / "src/core/a.cpp");
    write(root_ / "src/core/a.h");
    write(root_ / "src/notes.md");            // not a C++ source
    write(root_ / "build/gen/generated.cpp");  // skipped directory
    write(root_ / ".git/hook.cpp");            // hidden directory
    write(root_ / "third_party/vendor/lib.cpp");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static void write(const std::filesystem::path& p) {
    std::ofstream out{p};
    out << "// stub\n";
  }

  std::filesystem::path root_;
};

TEST_F(CollectFixture, SkipsBuildHiddenAndVendorDirectories) {
  const auto files = lint::collect_source_files({root_});
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].filename(), "a.cpp");
  EXPECT_EQ(files[1].filename(), "a.h");
}

TEST_F(CollectFixture, StableUnderSymlinkedRoots) {
  const std::filesystem::path link = root_ / "srclink";
  std::error_code ec;
  std::filesystem::create_directory_symlink(root_ / "src", link, ec);
  if (ec) GTEST_SKIP() << "filesystem does not support symlinks: " << ec.message();
  // The same tree reached twice (directly and via the symlink) must not
  // produce duplicate scan entries.
  const auto files = lint::collect_source_files({root_ / "src", link});
  EXPECT_EQ(files.size(), 2u);
  // A symlinked root alone still scans.
  EXPECT_EQ(lint::collect_source_files({link}).size(), 2u);
}

}  // namespace
}  // namespace iotsim::analyze
