// Fixture: raw allocation outside RAII (rules: raw-new, raw-delete).
struct Blob {
  int x = 0;
};

int churn() {
  Blob* b = new Blob{};
  const int x = b->x;
  delete b;
  int* arr = new int[16];
  delete[] arr;
  return x;
}
