// Fixture: non-deterministic seeding (rule: random-device).
#include <random>

int roll() {
  std::random_device rd;
  std::mt19937 gen{rd()};
  return static_cast<int>(gen());
}
