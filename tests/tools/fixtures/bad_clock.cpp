// Fixture: wall-clock reads inside sim code (rule: wall-clock).
#include <chrono>
#include <ctime>

long stamps() {
  const auto a = std::chrono::steady_clock::now().time_since_epoch().count();
  const auto b = std::chrono::system_clock::now().time_since_epoch().count();
  const auto c = std::chrono::high_resolution_clock::now().time_since_epoch().count();
  const auto d = static_cast<long>(time(nullptr));
  const auto e = static_cast<long>(time(NULL));
  return static_cast<long>(a + b + c) + d + e;
}
