// Fixture: a clean header. Mentions of rand(), new, delete and
// steady_clock in comments or string literals must NOT be flagged.
#pragma once

#include <memory>
#include <string>

namespace fixture {

class Widget {
 public:
  Widget() = default;
  Widget(const Widget&) = delete;             // '= delete' is not a raw delete
  Widget& operator=(const Widget&) = delete;  // neither is this

  // A comment saying rand() or steady_clock must not trip the scanner,
  // and neither should raw new in prose.
  [[nodiscard]] std::string motto() const {
    return "call rand() and new Widget at steady_clock time";
  }

 private:
  std::unique_ptr<int> owned_ = std::make_unique<int>(7);
};

}  // namespace fixture
