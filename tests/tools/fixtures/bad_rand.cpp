// Fixture: libc PRNG (rule: libc-rand).
#include <cstdlib>

int noisy() {
  srand(42);
  return rand() % 6;
}
