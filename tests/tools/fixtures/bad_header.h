// Fixture: header missing #pragma once and pulling in iostream
// (rules: pragma-once, iostream-header).
#ifndef BAD_HEADER_H
#define BAD_HEADER_H

#include <iostream>

inline void shout() { std::cout << "loud\n"; }

#endif
