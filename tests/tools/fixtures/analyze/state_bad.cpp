// Seeded shared-mutable-static violations: every scope a mutable static
// can hide in — namespace scope, anonymous namespace, function-local,
// static data member.
#include <string>

#include "fixture_support.h"

namespace fx {

int g_window_count = 0;  // VIOLATION: mutable global

namespace {
std::string g_last_label;  // VIOLATION: mutable global in anonymous namespace
}  // namespace

struct Telemetry {
  static int live_hubs;  // VIOLATION: static data member
  int per_instance = 0;  // fine: per-object state
};

int bump() {
  static int calls = 0;  // VIOLATION: function-local static cache
  return ++calls;
}

}  // namespace fx
