// Corrected forms of every coro_bad.cpp shape: the pass must stay silent.
#include <vector>

#include "fixture_support.h"

namespace fx {

sim::Task pump(Buffer& buf) {
  std::vector<int> samples = load();
  const int first = samples[0];   // copy, not a reference
  const int& early = samples[1];  // alias used only before the suspension
  use(early);
  co_await tick();
  use(first);
  const int& late = samples[2];  // re-derived after resume
  use(late);
  const auto& spec = buf.spec();  // alias into a parameter: caller's lifetime
  co_await tick();
  use(spec);
}

void spawn(int total) {
  auto job = [total]() -> sim::Task {  // by-value capture
    co_await tick();
    use(total);
  };
  keep(job);
}

}  // namespace fx
