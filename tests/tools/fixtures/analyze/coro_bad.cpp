// Seeded coro-dangling-ref violations: aliases into frame-locals crossing
// a suspension point, and a by-reference capture in a suspending lambda.
#include <vector>

#include "fixture_support.h"

namespace fx {

sim::Task pump() {
  std::vector<int> samples = load();
  const int& first = samples[0];  // reference into a local
  auto it = samples.begin();      // iterator into a local
  co_await tick();
  use(first);  // VIOLATION: ref used across co_await
  use(*it);    // VIOLATION: iterator used across co_await
}

sim::Task addr() {
  int level = 3;
  int* held = &level;  // pointer to a local
  co_await tick();
  use(*held);  // VIOLATION: pointer used across co_await
}

void spawn(int total) {
  auto job = [&total]() -> sim::Task {  // VIOLATION: by-ref capture, body suspends
    co_await tick();
    use(total);
  };
  keep(job);
}

}  // namespace fx
