// Seeded unordered-iteration and pointer-order violations.
#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "order_registry.h"

namespace fx {

struct Node {
  int id = 0;
};

double Registry::report() const {
  double sum = 0.0;
  for (const auto& [owner, joules] : joules_by_owner_) {  // VIOLATION: member
    sum += joules;                                        // declared in the header
  }
  return sum;
}

int count_tags(const std::unordered_set<int>& tags) {
  int n = 0;
  for (const int tag : tags) {  // VIOLATION: parameter of unordered type
    n += tag;
  }
  return n;
}

bool before(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) {
  return a.get() < b.get();  // VIOLATION: compares heap addresses
}

using NodeRank = std::set<Node*, std::less<Node*>>;  // VIOLATION: orders by address

void rank(std::vector<Node*>& pending) {
  std::sort(pending.begin(), pending.end());  // VIOLATION: sorts raw pointers
}

}  // namespace fx
