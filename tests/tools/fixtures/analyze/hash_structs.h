#pragma once
// Miniature versions of the memoised scenario structs for the
// hash-coverage fixture. `fresh_knob` is the seeded violation: it never
// reaches scenario_key() in hash_key.cpp (although unrelated() mentions
// it — reachability, not a file-wide grep, must decide).
#include <string>

namespace fx {

struct HubInstance {
  int count = 1;
  double drift = 0.0;
};

struct Scenario {
  int windows = 0;
  int seed = 0;
  double fresh_knob = 0.0;  // VIOLATION: missing from the content hash
  HubInstance hub;
};

}  // namespace fx
