#pragma once
// Miniature versions of the cached result structs for the codec-coverage
// fixture. `fresh_metric` is the seeded violation: it never reaches
// encode_result() in codec_enc.cpp (although decode_result() and
// unrelated() mention it — reachability, not a file-wide grep, must
// decide).
#include <string>
#include <vector>

namespace fx {

struct HubResult {
  std::string name;
  double joules = 0.0;
};

struct ScenarioResult {
  int windows = 0;
  double fresh_metric = 0.0;  // VIOLATION: missing from the binary codec
  std::vector<HubResult> hubs;
};

}  // namespace fx
