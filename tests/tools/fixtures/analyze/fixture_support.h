#pragma once
// Shared scaffolding so the analyze fixtures parse as plausible C++. The
// analyzer is lexical — none of this is compiled — but keeping the
// fixtures shaped like real code keeps the token patterns honest.
#include <string>
#include <vector>

namespace sim {
struct Task {};
}  // namespace sim

namespace fx {
struct Buffer {
  [[nodiscard]] const std::string& spec() const;
};
sim::Task tick();
std::vector<int> load();
void use(int);
void use(const std::string&);
template <typename T>
void keep(const T&);
}  // namespace fx
