#pragma once
// Cross-file half of the unordered-iteration fixture: the container is
// *declared* here and iterated in order_bad.cpp — detecting that requires
// the pass's tree-wide finish() join, not per-file matching.
#include <string>
#include <unordered_map>

namespace fx {

class Registry {
 public:
  void record(const std::string& owner, double joules);
  [[nodiscard]] double report() const;

 private:
  std::unordered_map<std::string, double> joules_by_owner_;
};

}  // namespace fx
