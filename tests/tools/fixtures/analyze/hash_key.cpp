// Content-hash half of the hash-coverage fixture: scenario_key() covers
// every Scenario/HubInstance field except fresh_knob. unrelated() below
// *does* touch fresh_knob — the pass must not be fooled by mentions
// outside scenario_key's call graph.
#include <string>

#include "hash_structs.h"

namespace fx {

struct Sink {
  void add(double v);
  std::string take();
};

void append_hub(Sink& s, const HubInstance& hi) {
  s.add(hi.count);
  s.add(hi.drift);
}

std::string scenario_key(const Scenario& sc) {
  Sink s;
  s.add(sc.windows);
  s.add(sc.seed);
  append_hub(s, sc.hub);
  return s.take();
}

double unrelated(const Scenario& sc) {
  return sc.fresh_knob * 2.0;  // mention outside the hash: must not mask
}

}  // namespace fx
