// Corrected forms of every state_bad.cpp shape: const, constexpr,
// synchronized, per-thread, or plain locals — the pass must stay silent.
#include <atomic>
#include <mutex>
#include <string>

#include "fixture_support.h"

namespace fx {

constexpr int kWindowBudget = 16;
const std::string kDefaultLabel = "idle";
std::atomic<int> g_live_hubs{0};  // synchronized: race-free by construction
thread_local int tls_depth = 0;   // per-thread, not shared
extern int g_declared_elsewhere;  // declaration only, not a definition

struct Telemetry {
  static constexpr int kMaxHubs = 64;
  int per_instance = 0;
};

int bump(int calls) {
  static const int kStep = 2;  // immutable static: fine
  std::mutex guard;            // plain local, not static
  int local_count = 0;
  (void)guard;
  return calls + local_count + kStep;
}

}  // namespace fx
