// Corrected forms of every order_bad.cpp shape: ordered snapshots and
// stable keys — both passes must stay silent.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "order_registry.h"

namespace fx {

struct Node {
  int id = 0;
};

double Registry::report() const {
  // Snapshot into an ordered container before folding.
  const std::map<std::string, double> sorted(joules_by_owner_.begin(),
                                             joules_by_owner_.end());
  double sum = 0.0;
  for (const auto& [owner, joules] : sorted) {
    sum += joules;
  }
  return sum;
}

bool before(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) {
  return a->id < b->id;  // compares content, not addresses
}

void rank(std::vector<Node>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
}

}  // namespace fx
