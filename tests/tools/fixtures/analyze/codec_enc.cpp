// Encoder half of the codec-coverage fixture: encode_result() covers every
// ScenarioResult/HubResult field except fresh_metric. decode_result() and
// unrelated() below *do* touch fresh_metric — the pass must not be fooled
// by mentions outside encode_result's call graph.
#include <string>

#include "codec_structs.h"

namespace fx {

struct Writer {
  void add(double v);
  void add_str(const std::string& v);
  std::string take();
};

void encode_hub(Writer& w, const HubResult& hr) {
  w.add_str(hr.name);
  w.add(hr.joules);
}

std::string encode_result(const ScenarioResult& r) {
  Writer w;
  w.add(r.windows);
  for (const auto& hub : r.hubs) encode_hub(w, hub);
  return w.take();
}

ScenarioResult decode_result(const std::string& bytes) {
  ScenarioResult r;
  r.windows = static_cast<int>(bytes.size());
  r.fresh_metric = 1.0;  // mention outside the encoder: must not mask
  return r;
}

double unrelated(const ScenarioResult& r) {
  return r.fresh_metric * 2.0;  // mention outside the encoder: must not mask
}

}  // namespace fx
