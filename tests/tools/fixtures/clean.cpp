// Fixture: clean source. Identifier *substrings* (brand, renew, timeout,
// runtime(...)) and masked regions must not be flagged.
#include "clean.h"

namespace fixture {

int brand = 1;       // contains "rand" as a substring
int renewal = 2;     // contains "new"
int timeout_ms = 3;  // contains "time"

int runtime(int x) { return x + brand + renewal + timeout_ms; }

/* block comment mentioning delete ptr and time(nullptr) — masked */
const char* kNote = "string mentioning srand( and delete[] — masked";

}  // namespace fixture
