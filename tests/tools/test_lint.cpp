// iotsim_lint coverage: every violation class is detected on a seeded
// fixture, clean input passes, masking and allowlisting behave. Fixture
// files live in tests/tools/fixtures (LINT_FIXTURE_DIR).
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>

namespace iotsim::lint {
namespace {

const Config kEmpty;

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path{LINT_FIXTURE_DIR} / name;
}

std::set<std::string> rules_of(const std::vector<Finding>& findings) {
  std::set<std::string> out;
  for (const auto& f : findings) out.insert(f.rule);
  return out;
}

int count_rule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

// --- each violation class is flagged -----------------------------------

TEST(LintFixtures, FlagsRandomDevice) {
  const auto findings = scan_file(fixture("bad_random_device.cpp"), kEmpty);
  EXPECT_EQ(count_rule(findings, kRuleRandomDevice), 1);
}

TEST(LintFixtures, FlagsLibcRand) {
  const auto findings = scan_file(fixture("bad_rand.cpp"), kEmpty);
  EXPECT_EQ(count_rule(findings, kRuleLibcRand), 2);  // srand() and rand()
}

TEST(LintFixtures, FlagsEveryWallClockForm) {
  const auto findings = scan_file(fixture("bad_clock.cpp"), kEmpty);
  // steady_clock, system_clock, high_resolution_clock, time(nullptr), time(NULL)
  EXPECT_EQ(count_rule(findings, kRuleWallClock), 5);
}

TEST(LintFixtures, FlagsRawNewAndDelete) {
  const auto findings = scan_file(fixture("bad_new.cpp"), kEmpty);
  EXPECT_EQ(count_rule(findings, kRuleRawNew), 2);
  EXPECT_EQ(count_rule(findings, kRuleRawDelete), 2);
}

TEST(LintFixtures, FlagsHeaderViolations) {
  const auto findings = scan_file(fixture("bad_header.h"), kEmpty);
  EXPECT_EQ(count_rule(findings, kRulePragmaOnce), 1);
  EXPECT_EQ(count_rule(findings, kRuleIostreamHeader), 1);
}

TEST(LintFixtures, FindingsCarryFileAndLine) {
  const auto findings = scan_file(fixture("bad_rand.cpp"), kEmpty);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].file.find("bad_rand.cpp"), std::string::npos);
  EXPECT_EQ(findings[0].line, 5);  // srand(42)
  EXPECT_EQ(findings[1].line, 6);  // rand()
}

// --- clean input passes -------------------------------------------------

TEST(LintFixtures, CleanFilesPass) {
  EXPECT_TRUE(scan_file(fixture("clean.cpp"), kEmpty).empty());
  EXPECT_TRUE(scan_file(fixture("clean.h"), kEmpty).empty());
}

TEST(LintFixtures, DirectoryScanAggregatesAndSorts) {
  const auto findings = scan_paths({std::filesystem::path{LINT_FIXTURE_DIR}}, kEmpty);
  const auto rules = rules_of(findings);
  // Every rule class is represented across the fixture set.
  for (std::string_view rule : kAllRules) {
    EXPECT_TRUE(rules.contains(std::string{rule})) << "missing rule " << rule;
  }
  EXPECT_TRUE(std::is_sorted(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                             }));
}

// --- masking ------------------------------------------------------------

TEST(LintMasking, CommentsAndStringsAreInert) {
  const std::string src =
      "// rand() in a line comment\n"
      "/* new Blob in a block\n   comment */\n"
      "const char* s = \"delete everything\";\n"
      "char c = 'x';\n";
  EXPECT_TRUE(scan_source("probe.cpp", src, kEmpty).empty());
}

TEST(LintMasking, MaskPreservesLengthAndNewlines) {
  const std::string src = "int a; // rand()\n\"str\\\"ing\"\n/* x\ny */ int b;\n";
  const std::string masked = mask_comments_and_strings(src);
  EXPECT_EQ(masked.size(), src.size());
  EXPECT_EQ(std::count(masked.begin(), masked.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(masked.find("rand"), std::string::npos);
}

TEST(LintMasking, RawStringsAreInert) {
  const std::string src = "const char* s = R\"(call rand() now)\";\nint live = 0;\n";
  EXPECT_TRUE(scan_source("probe.cpp", src, kEmpty).empty());
}

TEST(LintMasking, DigitSeparatorsDoNotDesyncTheMasker) {
  // A lone 1'000 must not open a char literal that swallows following code.
  const std::string src = "long v = 1'000;\nint bad = rand();\n";
  const auto findings = scan_source("probe.cpp", src, kEmpty);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, kRuleLibcRand);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintMasking, SubstringIdentifiersAreInert) {
  const std::string src = "int brand = 0; int renewal = 1; int timeout = 2;\n"
                          "int operand(int x) { return x; }\n";
  EXPECT_TRUE(scan_source("probe.cpp", src, kEmpty).empty());
}

TEST(LintMasking, DeletedFunctionsAreInert) {
  const std::string src = "struct S { S(const S&) = delete; void* operator new(unsigned long); };\n";
  EXPECT_TRUE(scan_source("probe.h", src + "#pragma once\n", kEmpty).empty());
}

// --- allowlist ----------------------------------------------------------

TEST(LintConfig, ParsesAllowLines) {
  std::istringstream in{
      "# comment\n"
      "\n"
      "allow raw-new src/sim/arena.cpp  # trailing comment\n"
      "allow wall-clock bench/\n"};
  const Config cfg = parse_config(in);
  ASSERT_EQ(cfg.allow.size(), 2u);
  EXPECT_TRUE(allowed(cfg, "raw-new", "src/sim/arena.cpp"));
  EXPECT_FALSE(allowed(cfg, "raw-delete", "src/sim/arena.cpp"));
  EXPECT_TRUE(allowed(cfg, "wall-clock", "bench/fig01.cpp"));
  EXPECT_FALSE(allowed(cfg, "wall-clock", "src/sim/simulator.cpp"));
}

TEST(LintConfig, RejectsMalformedLines) {
  std::istringstream bad_directive{"deny raw-new foo\n"};
  EXPECT_THROW(parse_config(bad_directive), std::runtime_error);
  std::istringstream missing_field{"allow raw-new\n"};
  EXPECT_THROW(parse_config(missing_field), std::runtime_error);
  std::istringstream unknown_rule{"allow not-a-rule foo\n"};
  EXPECT_THROW(parse_config(unknown_rule), std::runtime_error);
}

TEST(LintConfig, AllowlistSuppressesFindings) {
  std::istringstream in{"allow raw-new bad_new.cpp\nallow raw-delete bad_new.cpp\n"};
  const Config cfg = parse_config(in);
  EXPECT_TRUE(scan_file(fixture("bad_new.cpp"), cfg).empty());
  // Other files keep their findings.
  EXPECT_FALSE(scan_file(fixture("bad_rand.cpp"), cfg).empty());
}

}  // namespace
}  // namespace iotsim::lint
