// Scenario-level contract of the environment layer: legacy equivalence of
// the iid profile, crash/reboot determinism, online battery semantics and
// the acceptance criterion of the sharded path — a fleet with crashing and
// harvesting hubs serializes byte-identically at any shard count.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/result_json.h"
#include "core/scenario_runner.h"

namespace iotsim {
namespace {

using core::Scenario;
using core::Scheme;

core::ScenarioBuilder step_counter(Scheme scheme, int windows) {
  return Scenario::builder()
      .apps({apps::AppId::kA2StepCounter})
      .scheme(scheme)
      .windows(windows);
}

// --- legacy equivalence ----------------------------------------------------

// The iid fault profile must reproduce the pre-environment
// world.sensor_fault_prob spelling bit-for-bit: same energy, same error and
// interrupt counts, same span (the environment layer only *adds* the
// availability section).
TEST(Environment, IidProfileMatchesLegacyWorldSpelling) {
  const double prob = 0.25;
  env::EnvironmentConfig environment;
  environment.faults.model = env::FaultModel::kIid;
  environment.faults.fault_prob = prob;
  const auto via_env =
      core::run_scenario(step_counter(Scheme::kBaseline, 3).environment(environment).build());

  sensors::WorldConfig world;
  world.sensor_fault_prob = prob;
  const auto via_world =
      core::run_scenario(step_counter(Scheme::kBaseline, 3).world(world).build());

  ASSERT_TRUE(via_env.ok());
  ASSERT_TRUE(via_world.ok());
  EXPECT_GT(via_env.sensor_read_errors, 0u);
  EXPECT_EQ(via_env.total_joules(), via_world.total_joules());
  EXPECT_EQ(via_env.sensor_read_errors, via_world.sensor_read_errors);
  EXPECT_EQ(via_env.interrupts_raised, via_world.interrupts_raised);
  EXPECT_EQ(via_env.cpu_wakeups, via_world.cpu_wakeups);
  EXPECT_EQ(via_env.span.count_ns(), via_world.span.count_ns());

  // The only observable difference: the env run reports a modeled
  // availability section, the legacy run the always-up default.
  ASSERT_EQ(via_env.hubs.size(), 1u);
  EXPECT_TRUE(via_env.hubs[0].availability.modeled);
  EXPECT_FALSE(via_env.hubs[0].availability.power_limited);
  EXPECT_FALSE(via_world.hubs[0].availability.modeled);
  EXPECT_TRUE(via_env.energy.availability().modeled);
  EXPECT_EQ(via_env.energy.availability().hubs_modeled, 1u);
  EXPECT_FALSE(via_world.energy.availability().modeled);
}

TEST(Environment, NoEnvironmentReportsAlwaysUp) {
  const auto r = core::run_scenario(step_counter(Scheme::kBcom, 2).build());
  ASSERT_TRUE(r.ok());
  const auto& a = r.hubs[0].availability;
  EXPECT_FALSE(a.modeled);
  EXPECT_EQ(a.windows_lost, 0u);
  EXPECT_EQ(a.reboots, 0u);
  EXPECT_DOUBLE_EQ(a.uptime_fraction, 1.0);
  EXPECT_EQ(a.downtime.count_ns(), 0);
}

// --- sample loss through correlated faults ---------------------------------

// A Gilbert-Elliott profile that is pinned inside a certain burst fails
// every availability check; unlike iid, the exhausted retries *lose* the
// sample — counted per hub, with the window itself still completing.
TEST(Environment, CertainBurstLosesSamplesButNotWindows) {
  env::EnvironmentConfig environment;
  environment.faults.model = env::FaultModel::kGilbertElliott;
  environment.faults.burst_enter_prob = 1.0;
  environment.faults.burst_exit_prob = 0.0;
  environment.faults.good_fault_prob = 0.0;
  environment.faults.burst_fault_prob = 1.0;
  const auto r =
      core::run_scenario(step_counter(Scheme::kBaseline, 2).environment(environment).build());
  ASSERT_TRUE(r.ok());
  const auto& a = r.hubs[0].availability;
  EXPECT_GT(a.samples_lost_faults, 0u);
  EXPECT_EQ(a.windows_lost, 0u);
  EXPECT_EQ(a.samples_lost_outage, 0u);
  EXPECT_GT(r.sensor_read_errors, 0u);  // every check retried three times
  EXPECT_DOUBLE_EQ(a.uptime_fraction, 1.0);
}

// --- crash/reboot ----------------------------------------------------------

Scenario crashy_fleet(int hubs, int windows) {
  env::EnvironmentConfig environment;
  environment.crash.crash_prob_per_window = 0.3;
  environment.crash.reboot_windows = 2;
  return Scenario::builder()
      .scheme(Scheme::kBaseline)
      .windows(windows)
      .environment(environment)
      .add_hub(hw::default_hub_spec(), {apps::AppId::kA2StepCounter}, hubs)
      .build();
}

TEST(Environment, CrashRebootIsDeterministicAndCounted) {
  const auto first = core::run_scenario(crashy_fleet(4, 12));
  const auto second = core::run_scenario(crashy_fleet(4, 12));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(core::to_json_text(first), core::to_json_text(second));

  const auto& a = first.energy.availability();
  EXPECT_TRUE(a.modeled);
  EXPECT_EQ(a.hubs_modeled, 4u);
  // p=0.3 over 4×12 hub-windows: a crash-free run would be a 1-in-10^7 fluke.
  EXPECT_GT(a.reboots, 0u);
  EXPECT_GE(a.windows_lost, a.reboots);  // each reboot loses ≥ 1 window
  // Downtime is exactly the lost-window count at the 1 s window quantum.
  EXPECT_EQ(a.downtime.count_ns(), static_cast<std::int64_t>(a.windows_lost) * 1'000'000'000);

  // The fleet roll-up re-assembles from the per-hub sections.
  std::uint64_t reboots = 0, lost = 0;
  bool any_down = false;
  for (const auto& hub : first.hubs) {
    EXPECT_TRUE(hub.availability.modeled);
    reboots += hub.availability.reboots;
    lost += hub.availability.windows_lost;
    any_down = any_down || hub.availability.uptime_fraction < 1.0;
  }
  EXPECT_EQ(reboots, a.reboots);
  EXPECT_EQ(lost, a.windows_lost);
  EXPECT_TRUE(any_down);
}

TEST(Environment, CrashSaltKeepsCleanHubsIdentical) {
  // A crash model with probability zero must not perturb the run at all:
  // the crash RNG derives from a salted seed, not the hub's fork chain.
  env::EnvironmentConfig environment;
  environment.crash.crash_prob_per_window = 0.0;
  const auto with_env =
      core::run_scenario(step_counter(Scheme::kBatching, 3).environment(environment).build());
  const auto legacy = core::run_scenario(step_counter(Scheme::kBatching, 3).build());
  ASSERT_TRUE(with_env.ok());
  EXPECT_EQ(with_env.total_joules(), legacy.total_joules());
  EXPECT_EQ(with_env.interrupts_raised, legacy.interrupts_raised);
  EXPECT_EQ(with_env.span.count_ns(), legacy.span.count_ns());
}

// --- online power ----------------------------------------------------------

Scenario battery_scenario(env::PowerModel model, env::HarvestTrace harvest, int windows) {
  env::EnvironmentConfig environment;
  environment.power.model = model;
  environment.power.battery_capacity_wh = 0.0003;  // 1.08 J — depletes fast
  environment.power.harvest = harvest;
  return step_counter(Scheme::kBaseline, windows).environment(environment).build();
}

TEST(Environment, BatteryDepletionSuspendsTheHub) {
  const auto r = core::run_scenario(battery_scenario(env::PowerModel::kBattery, {}, 6));
  ASSERT_TRUE(r.ok());
  const auto& a = r.hubs[0].availability;
  EXPECT_TRUE(a.modeled);
  EXPECT_TRUE(a.power_limited);
  EXPECT_GT(a.windows_lost, 0u);          // the store runs dry mid-run…
  EXPECT_GT(a.samples_lost_outage, 0u);   // …and gates the samplers
  EXPECT_LT(a.uptime_fraction, 1.0);
  EXPECT_GT(a.billed_j, 0.0);
  EXPECT_LE(a.billed_j, 1.08 + 1e-9);     // never bills beyond the store
  EXPECT_DOUBLE_EQ(a.stored_j, 0.0);
  EXPECT_DOUBLE_EQ(a.harvested_j, 0.0);
  EXPECT_DOUBLE_EQ(a.energy_neutral_margin(), 0.0);

  // Depletion is part of the deterministic run, not wall-clock state.
  const auto again = core::run_scenario(battery_scenario(env::PowerModel::kBattery, {}, 6));
  EXPECT_EQ(core::to_json_text(r), core::to_json_text(again));
}

TEST(Environment, HarvestingBringsTheHubBack) {
  env::HarvestTrace sun;
  sun.peak_w = 5.0;
  sun.period_s = 4.0;
  sun.duty = 0.5;  // 5 W for 2 s of every 4 — above the hub's average draw
  const auto dark = core::run_scenario(battery_scenario(env::PowerModel::kBattery, {}, 10));
  const auto lit =
      core::run_scenario(battery_scenario(env::PowerModel::kHarvesting, sun, 10));
  ASSERT_TRUE(lit.ok());

  const auto& harvested = lit.hubs[0].availability;
  const auto& depleted = dark.hubs[0].availability;
  EXPECT_GT(harvested.harvested_j, 0.0);
  // The harvesting hub recovers windows the pure battery loses for good.
  EXPECT_LT(harvested.windows_lost, depleted.windows_lost);
  EXPECT_GT(harvested.uptime_fraction, depleted.uptime_fraction);
  EXPECT_GT(harvested.energy_neutral_margin(), 0.0);
}

// --- sharded execution -----------------------------------------------------

// The acceptance criterion: a mixed fleet — crashing hubs, harvesting
// battery hubs and plain legacy hubs side by side — serializes
// byte-identically single-threaded and at any shard count / barrier window.
TEST(Environment, ShardedFleetWithEnvironmentsIsByteIdentical) {
  env::EnvironmentConfig crashy;
  crashy.faults.model = env::FaultModel::kGilbertElliott;
  crashy.faults.burst_enter_prob = 0.1;
  crashy.faults.burst_exit_prob = 0.3;
  crashy.faults.burst_fault_prob = 0.8;
  crashy.crash.crash_prob_per_window = 0.25;
  crashy.crash.reboot_windows = 1;

  env::EnvironmentConfig solar;
  solar.power.model = env::PowerModel::kHarvesting;
  solar.power.battery_capacity_wh = 0.0005;
  solar.power.harvest.peak_w = 4.0;
  solar.power.harvest.period_s = 3.0;
  solar.power.harvest.duty = 0.5;

  const Scenario sc = Scenario::builder()
                          .scheme(Scheme::kBcom)
                          .windows(8)
                          .add_hub(hw::default_hub_spec(), {apps::AppId::kA2StepCounter}, 2)
                          .hub_environment(crashy)
                          .add_hub(hw::default_hub_spec(), {apps::AppId::kA8Heartbeat}, 2)
                          .hub_environment(solar)
                          .add_hub(hw::default_hub_spec(), {apps::AppId::kA5Blynk}, 2)
                          .build();

  const std::string single = core::to_json_text(core::run_scenario(sc, core::ExecPolicy{}));
  const std::string sharded3 =
      core::to_json_text(core::run_scenario(sc, core::ExecPolicy{.shards = 3}));
  const std::string sharded6_windowed = core::to_json_text(core::run_scenario(
      sc, core::ExecPolicy{.shards = 6, .window = sim::Duration::sec(1)}));
  EXPECT_EQ(single, sharded3);
  EXPECT_EQ(single, sharded6_windowed);

  // Per-hub overrides land on the right hubs: the crashy pair is modeled
  // without power limits, the solar pair is power-limited, the plain pair
  // reports the always-up default.
  const auto r = core::run_scenario(sc);
  ASSERT_EQ(r.hubs.size(), 6u);
  EXPECT_TRUE(r.hubs[0].availability.modeled);
  EXPECT_FALSE(r.hubs[0].availability.power_limited);
  EXPECT_TRUE(r.hubs[2].availability.power_limited);
  EXPECT_FALSE(r.hubs[4].availability.modeled);
  EXPECT_EQ(r.energy.availability().hubs_modeled, 4u);
}

// --- serialization ---------------------------------------------------------

TEST(Environment, JsonCarriesAvailabilitySections) {
  const auto r = core::run_scenario(battery_scenario(env::PowerModel::kBattery, {}, 4));
  const std::string json = core::to_json_text(r);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"windows_lost\""), std::string::npos);
  EXPECT_NE(json.find("\"energy_neutral_margin\""), std::string::npos);
}

// --- validation ------------------------------------------------------------

TEST(Environment, ValidationRejectsBadFields) {
  env::EnvironmentConfig bad;
  bad.faults.fault_prob = 1.5;
  bad.crash.reboot_windows = 0;
  bad.power.model = env::PowerModel::kBattery;
  bad.power.battery_capacity_wh = 0.0;
  const auto errors = step_counter(Scheme::kBaseline, 2).environment(bad).build().validate();

  auto has_field = [&](const std::string& field) {
    return std::any_of(errors.begin(), errors.end(),
                       [&](const core::ScenarioError& e) { return e.field == field; });
  };
  EXPECT_TRUE(has_field("environment.faults.fault_prob"));
  EXPECT_TRUE(has_field("environment.crash.reboot_windows"));
  EXPECT_TRUE(has_field("environment.power.battery_capacity_wh"));

  // run_scenario surfaces them instead of running.
  const auto r =
      core::run_scenario(step_counter(Scheme::kBaseline, 2).environment(bad).build());
  EXPECT_FALSE(r.ok());
}

TEST(Environment, ValidationPrefixesPerHubOverrides) {
  env::EnvironmentConfig bad;
  bad.power.harvest.duty = 2.0;
  const Scenario sc = Scenario::builder()
                          .windows(2)
                          .add_hub(hw::default_hub_spec(), {apps::AppId::kA2StepCounter})
                          .hub_environment(bad)
                          .build();
  const auto errors = sc.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(std::any_of(errors.begin(), errors.end(), [](const core::ScenarioError& e) {
    return e.field == "hubs[0].environment.power.harvest.duty";
  }));
}

}  // namespace
}  // namespace iotsim
