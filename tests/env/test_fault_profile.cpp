#include "env/fault_profile.h"

#include <gtest/gtest.h>

namespace iotsim::env {
namespace {

sim::SimTime at_ms(std::int64_t ms) { return sim::SimTime::origin() + sim::Duration::ms(ms); }

// --- iid: the legacy-equivalence contract ---------------------------------

// The iid profile must reproduce the pre-environment draw expression
// `prob > 0 && rng.bernoulli(prob)` bit-for-bit on an identically seeded
// stream — this is what keeps legacy scenarios byte-identical.
TEST(IidFaultProfile, ReproducesLegacyDrawSequence) {
  const double prob = 0.27;
  sim::Rng hub_a{0xFEEDBEEFull};
  sim::Rng hub_b{0xFEEDBEEFull};
  IidFaultProfile profile{prob, hub_a.fork()};
  sim::Rng legacy = hub_b.fork();
  for (int i = 0; i < 2000; ++i) {
    const bool expected = prob > 0.0 && legacy.bernoulli(prob);
    EXPECT_EQ(profile.check_fails(at_ms(i)), expected) << "draw " << i;
  }
}

TEST(IidFaultProfile, ZeroProbabilityNeverFails) {
  sim::Rng rng{7};
  IidFaultProfile profile{0.0, rng.fork()};
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(profile.check_fails(at_ms(i)));
}

TEST(IidFaultProfile, DeliversAfterFailedRetries) {
  sim::Rng rng{7};
  IidFaultProfile profile{0.5, rng.fork()};
  // Legacy semantics: three failed checks still read the sensor in the end.
  EXPECT_TRUE(profile.delivers_after_failed_retries());
}

// --- Gilbert-Elliott: correlated bursts -----------------------------------

// The documented draw-consumption contract: one state-transition draw, then
// one per-state failure draw, both unconditional (except the zero-probability
// short-circuit on the failure draw), state stepped *before* the failure is
// decided. A replica consuming the same stream must match exactly.
TEST(GilbertElliottFaultProfile, MatchesReferenceChainExactly) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kGilbertElliott;
  cfg.burst_enter_prob = 0.08;
  cfg.burst_exit_prob = 0.25;
  cfg.good_fault_prob = 0.01;
  cfg.burst_fault_prob = 0.85;

  sim::Rng hub_a{42};
  sim::Rng hub_b{42};
  GilbertElliottFaultProfile profile{cfg, hub_a.fork()};
  sim::Rng replica = hub_b.fork();
  bool burst = false;
  for (int i = 0; i < 4000; ++i) {
    if (burst) {
      if (replica.bernoulli(cfg.burst_exit_prob)) burst = false;
    } else {
      if (replica.bernoulli(cfg.burst_enter_prob)) burst = true;
    }
    const double p = burst ? cfg.burst_fault_prob : cfg.good_fault_prob;
    const bool expected = p > 0.0 && replica.bernoulli(p);
    EXPECT_EQ(profile.check_fails(at_ms(i)), expected) << "check " << i;
    EXPECT_EQ(profile.in_burst(), burst) << "check " << i;
  }
}

TEST(GilbertElliottFaultProfile, CertainBurstAlwaysFails) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kGilbertElliott;
  cfg.burst_enter_prob = 1.0;  // enter the burst on the very first check
  cfg.burst_exit_prob = 0.0;   // and never leave it
  cfg.good_fault_prob = 0.0;
  cfg.burst_fault_prob = 1.0;
  sim::Rng rng{3};
  GilbertElliottFaultProfile profile{cfg, rng.fork()};
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(profile.check_fails(at_ms(i)));
    EXPECT_TRUE(profile.in_burst());
  }
}

TEST(GilbertElliottFaultProfile, NeverEnteringTheBurstIsClean) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kGilbertElliott;
  cfg.burst_enter_prob = 0.0;
  cfg.good_fault_prob = 0.0;
  cfg.burst_fault_prob = 1.0;  // would fail — but the state is unreachable
  sim::Rng rng{3};
  GilbertElliottFaultProfile profile{cfg, rng.fork()};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(profile.check_fails(at_ms(i)));
    EXPECT_FALSE(profile.in_burst());
  }
}

TEST(GilbertElliottFaultProfile, LosesTheSampleAfterFailedRetries) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kGilbertElliott;
  sim::Rng rng{3};
  GilbertElliottFaultProfile profile{cfg, rng.fork()};
  EXPECT_FALSE(profile.delivers_after_failed_retries());
}

// --- degrading: time-dependent failure probability ------------------------

TEST(DegradingFaultProfile, ProbabilityClimbsLinearlyAndCaps) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kDegrading;
  cfg.fault_prob = 0.1;
  cfg.degrade_per_hour = 0.2;
  cfg.degrade_cap = 0.5;
  sim::Rng rng{5};
  DegradingFaultProfile profile{cfg, rng.fork()};

  EXPECT_DOUBLE_EQ(profile.fault_prob_at(sim::SimTime::origin()), 0.1);
  EXPECT_DOUBLE_EQ(
      profile.fault_prob_at(sim::SimTime::origin() + sim::Duration::sec(3600)), 0.3);
  EXPECT_DOUBLE_EQ(
      profile.fault_prob_at(sim::SimTime::origin() + sim::Duration::sec(2 * 3600)), 0.5);
  // Past the cap the probability pins there instead of marching to 1.
  EXPECT_DOUBLE_EQ(
      profile.fault_prob_at(sim::SimTime::origin() + sim::Duration::sec(100 * 3600)), 0.5);
  EXPECT_FALSE(profile.delivers_after_failed_retries());
}

TEST(DegradingFaultProfile, ZeroBaseAndRateNeverFails) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kDegrading;
  cfg.fault_prob = 0.0;
  cfg.degrade_per_hour = 0.0;
  sim::Rng rng{5};
  DegradingFaultProfile profile{cfg, rng.fork()};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(profile.check_fails(at_ms(i * 100)));
  }
}

TEST(DegradingFaultProfile, MatchesInstantaneousBernoulliSequence) {
  FaultProfileConfig cfg;
  cfg.model = FaultModel::kDegrading;
  cfg.fault_prob = 0.05;
  cfg.degrade_per_hour = 100.0;  // ramps fast enough to hit the cap in-test
  cfg.degrade_cap = 0.4;
  sim::Rng hub_a{11};
  sim::Rng hub_b{11};
  DegradingFaultProfile profile{cfg, hub_a.fork()};
  sim::Rng replica = hub_b.fork();
  for (int i = 0; i < 1000; ++i) {
    const sim::SimTime now = at_ms(i * 50);
    const double p = profile.fault_prob_at(now);
    const bool expected = p > 0.0 && replica.bernoulli(p);
    EXPECT_EQ(profile.check_fails(now), expected) << "check " << i;
  }
}

// --- factory dispatch ------------------------------------------------------

TEST(MakeFaultProfile, DispatchesOnModel) {
  sim::Rng rng{1};
  FaultProfileConfig cfg;

  cfg.model = FaultModel::kIid;
  auto iid = make_fault_profile(cfg, rng.fork());
  EXPECT_NE(dynamic_cast<IidFaultProfile*>(iid.get()), nullptr);

  cfg.model = FaultModel::kGilbertElliott;
  auto ge = make_fault_profile(cfg, rng.fork());
  EXPECT_NE(dynamic_cast<GilbertElliottFaultProfile*>(ge.get()), nullptr);

  cfg.model = FaultModel::kDegrading;
  auto deg = make_fault_profile(cfg, rng.fork());
  EXPECT_NE(dynamic_cast<DegradingFaultProfile*>(deg.get()), nullptr);
}

}  // namespace
}  // namespace iotsim::env
