#include "env/power_source.h"

#include <gtest/gtest.h>

namespace iotsim::env {
namespace {

sim::SimTime at_ms(std::int64_t ms) { return sim::SimTime::origin() + sim::Duration::ms(ms); }

// --- harvested_joules: the square-wave closed form -------------------------

TEST(HarvestedJoules, ConstantTraceWhenPeriodNonPositive) {
  HarvestTrace trace;
  trace.peak_w = 2.0;
  trace.period_s = 0.0;  // no period ⇒ constant delivery at peak_w
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(3000)), 6.0);
}

TEST(HarvestedJoules, FullDutyIsConstant) {
  HarvestTrace trace;
  trace.peak_w = 1.5;
  trace.period_s = 10.0;
  trace.duty = 1.0;
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(500), at_ms(2500)), 3.0);
}

TEST(HarvestedJoules, DegenerateTracesDeliverNothing) {
  HarvestTrace trace;
  trace.peak_w = 2.0;
  trace.period_s = 10.0;
  trace.duty = 0.0;
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(10000)), 0.0);

  trace.duty = 0.5;
  trace.peak_w = 0.0;
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(10000)), 0.0);

  trace.peak_w = 2.0;
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(5000), at_ms(5000)), 0.0);
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(5000), at_ms(1000)), 0.0);
}

TEST(HarvestedJoules, WholeCyclesIntegrateDutyTimesPeak) {
  HarvestTrace trace;
  trace.peak_w = 2.0;
  trace.period_s = 10.0;
  trace.duty = 0.3;  // 3 s on per cycle ⇒ 6 J per cycle
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(20000)), 12.0);
}

TEST(HarvestedJoules, PartialCycleClipsToOnTime) {
  HarvestTrace trace;
  trace.peak_w = 2.0;
  trace.period_s = 10.0;
  trace.duty = 0.3;  // on during [0, 3) of each cycle
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(1000)), 2.0);
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(5000)), 6.0);
  // Entirely inside the off-phase: nothing arrives.
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(4000), at_ms(9000)), 0.0);
}

TEST(HarvestedJoules, PhaseShiftsTheOnWindow) {
  HarvestTrace trace;
  trace.peak_w = 2.0;
  trace.period_s = 10.0;
  trace.duty = 0.3;
  trace.phase_s = 2.0;  // on during [2, 5) of each cycle
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(0), at_ms(2000)), 0.0);
  EXPECT_DOUBLE_EQ(harvested_joules(trace, at_ms(2000), at_ms(5000)), 6.0);
}

// The supervisor evaluates the trace one window at a time; splitting an
// interval at arbitrary boundaries must not change the total.
TEST(HarvestedJoules, WindowedSumMatchesWholeInterval) {
  HarvestTrace trace;
  trace.peak_w = 1.5;
  trace.period_s = 3.7;
  trace.duty = 0.41;
  trace.phase_s = 0.9;
  const int windows = 20;
  double sum = 0.0;
  for (int w = 0; w < windows; ++w) {
    sum += harvested_joules(trace, at_ms(w * 1000), at_ms((w + 1) * 1000));
  }
  EXPECT_NEAR(sum, harvested_joules(trace, at_ms(0), at_ms(windows * 1000)), 1e-9);
}

// --- MainsPower ------------------------------------------------------------

TEST(MainsPower, UnlimitedAndFree) {
  PowerConfig cfg;  // defaults to kMains
  auto mains = make_power_source(cfg);
  EXPECT_FALSE(mains->finite());
  EXPECT_DOUBLE_EQ(mains->stored_joules(), 0.0);
  const PowerWindow w = mains->end_of_window(at_ms(0), at_ms(1000), 123.0);
  EXPECT_TRUE(w.available);
  EXPECT_DOUBLE_EQ(w.billed_j, 0.0);
  EXPECT_DOUBLE_EQ(w.harvested_j, 0.0);
}

// --- BatteryPower ----------------------------------------------------------

PowerConfig small_battery(PowerModel model) {
  PowerConfig cfg;
  cfg.model = model;
  cfg.battery_capacity_wh = 0.001;  // 3.6 J nameplate
  cfg.battery_usable_fraction = 1.0;
  cfg.initial_soc = 1.0;
  cfg.resume_soc = 0.5;
  return cfg;
}

TEST(BatteryPower, BillsTheLedgerDeltaUntilDepleted) {
  auto battery = make_power_source(small_battery(PowerModel::kBattery));
  EXPECT_TRUE(battery->finite());
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 3.6);

  PowerWindow w = battery->end_of_window(at_ms(0), at_ms(1000), 1.0);
  EXPECT_TRUE(w.available);
  EXPECT_DOUBLE_EQ(w.billed_j, 1.0);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 2.6);

  // Over-draw bills only the stored remainder and suspends the hub.
  w = battery->end_of_window(at_ms(1000), at_ms(2000), 5.0);
  EXPECT_FALSE(w.available);
  EXPECT_DOUBLE_EQ(w.billed_j, 2.6);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 0.0);

  // Without harvest the outage is permanent.
  w = battery->end_of_window(at_ms(2000), at_ms(3000), 0.0);
  EXPECT_FALSE(w.available);
  EXPECT_DOUBLE_EQ(w.billed_j, 0.0);
}

TEST(BatteryPower, InitialSocPreDrainsTheStore) {
  PowerConfig cfg = small_battery(PowerModel::kBattery);
  cfg.initial_soc = 0.25;
  auto battery = make_power_source(cfg);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 0.9);
}

TEST(BatteryPower, UsableFractionLimitsTheStore) {
  PowerConfig cfg = small_battery(PowerModel::kBattery);
  cfg.battery_usable_fraction = 0.5;
  auto battery = make_power_source(cfg);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 1.8);
}

TEST(BatteryPower, PureBatteryIgnoresTheHarvestTrace) {
  PowerConfig cfg = small_battery(PowerModel::kBattery);
  cfg.harvest.peak_w = 100.0;  // configured but the model is kBattery
  auto battery = make_power_source(cfg);
  const PowerWindow w = battery->end_of_window(at_ms(0), at_ms(1000), 1.0);
  EXPECT_DOUBLE_EQ(w.harvested_j, 0.0);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 2.6);
}

TEST(BatteryPower, HarvestRechargesClampedToCapacity) {
  PowerConfig cfg = small_battery(PowerModel::kHarvesting);
  cfg.harvest.peak_w = 10.0;  // 10 J per 1 s window, far above the deficit
  auto battery = make_power_source(cfg);
  (void)battery->end_of_window(at_ms(0), at_ms(1000), 2.0);  // drain 2 J
  // Only the 2 J deficit stores; harvested_j reports what actually charged.
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 3.6);
  const PowerWindow w = battery->end_of_window(at_ms(1000), at_ms(2000), 0.0);
  EXPECT_DOUBLE_EQ(w.harvested_j, 0.0);  // already full
}

TEST(BatteryPower, HysteresisHoldsUntilResumeSoc) {
  PowerConfig cfg = small_battery(PowerModel::kHarvesting);
  cfg.resume_soc = 0.5;       // 1.8 J of the 3.6 J store
  cfg.harvest.peak_w = 1.0;   // 1 J per window while the sun is on
  cfg.harvest.period_s = 10.0;
  cfg.harvest.duty = 0.2;
  cfg.harvest.phase_s = 2.0;  // on during [2, 4) of each cycle
  auto battery = make_power_source(cfg);

  // Window [0, 1): dark, over-draw empties the store ⇒ suspended.
  PowerWindow w = battery->end_of_window(at_ms(0), at_ms(1000), 10.0);
  EXPECT_FALSE(w.available);
  EXPECT_DOUBLE_EQ(battery->stored_joules(), 0.0);

  // Window [1, 2): still dark, still down.
  w = battery->end_of_window(at_ms(1000), at_ms(2000), 0.0);
  EXPECT_FALSE(w.available);

  // Window [2, 3): 1 J harvested — state of charge 0.28, below resume_soc,
  // so the hysteresis keeps the hub suspended (no flapping at the floor).
  w = battery->end_of_window(at_ms(2000), at_ms(3000), 0.0);
  EXPECT_DOUBLE_EQ(w.harvested_j, 1.0);
  EXPECT_FALSE(w.available);

  // Window [3, 4): another 1 J — 0.56 ≥ resume_soc, the hub comes back.
  w = battery->end_of_window(at_ms(3000), at_ms(4000), 0.0);
  EXPECT_DOUBLE_EQ(w.harvested_j, 1.0);
  EXPECT_TRUE(w.available);
}

}  // namespace
}  // namespace iotsim::env
