# Empty compiler generated dependencies file for iotsim.
# This may be replaced when dependencies are built.
