file(REMOVE_RECURSE
  "libiotsim.a"
)
