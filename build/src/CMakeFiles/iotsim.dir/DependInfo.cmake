
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_registry.cpp" "src/CMakeFiles/iotsim.dir/apps/app_registry.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/app_registry.cpp.o.d"
  "/root/repo/src/apps/arduino_json_app.cpp" "src/CMakeFiles/iotsim.dir/apps/arduino_json_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/arduino_json_app.cpp.o.d"
  "/root/repo/src/apps/blynk_app.cpp" "src/CMakeFiles/iotsim.dir/apps/blynk_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/blynk_app.cpp.o.d"
  "/root/repo/src/apps/coap_server_app.cpp" "src/CMakeFiles/iotsim.dir/apps/coap_server_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/coap_server_app.cpp.o.d"
  "/root/repo/src/apps/dropbox_app.cpp" "src/CMakeFiles/iotsim.dir/apps/dropbox_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/dropbox_app.cpp.o.d"
  "/root/repo/src/apps/earthquake_app.cpp" "src/CMakeFiles/iotsim.dir/apps/earthquake_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/earthquake_app.cpp.o.d"
  "/root/repo/src/apps/fingerprint_app.cpp" "src/CMakeFiles/iotsim.dir/apps/fingerprint_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/fingerprint_app.cpp.o.d"
  "/root/repo/src/apps/heartbeat_app.cpp" "src/CMakeFiles/iotsim.dir/apps/heartbeat_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/heartbeat_app.cpp.o.d"
  "/root/repo/src/apps/jpeg_decoder_app.cpp" "src/CMakeFiles/iotsim.dir/apps/jpeg_decoder_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/jpeg_decoder_app.cpp.o.d"
  "/root/repo/src/apps/m2x_app.cpp" "src/CMakeFiles/iotsim.dir/apps/m2x_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/m2x_app.cpp.o.d"
  "/root/repo/src/apps/speech_to_text_app.cpp" "src/CMakeFiles/iotsim.dir/apps/speech_to_text_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/speech_to_text_app.cpp.o.d"
  "/root/repo/src/apps/step_counter_app.cpp" "src/CMakeFiles/iotsim.dir/apps/step_counter_app.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/step_counter_app.cpp.o.d"
  "/root/repo/src/apps/workload_spec.cpp" "src/CMakeFiles/iotsim.dir/apps/workload_spec.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/apps/workload_spec.cpp.o.d"
  "/root/repo/src/codecs/coap/coap_client.cpp" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_client.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_client.cpp.o.d"
  "/root/repo/src/codecs/coap/coap_codec.cpp" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_codec.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_codec.cpp.o.d"
  "/root/repo/src/codecs/coap/coap_message.cpp" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_message.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_message.cpp.o.d"
  "/root/repo/src/codecs/coap/coap_server.cpp" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_server.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/coap/coap_server.cpp.o.d"
  "/root/repo/src/codecs/fingerprint/matcher.cpp" "src/CMakeFiles/iotsim.dir/codecs/fingerprint/matcher.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/fingerprint/matcher.cpp.o.d"
  "/root/repo/src/codecs/fingerprint/minutiae.cpp" "src/CMakeFiles/iotsim.dir/codecs/fingerprint/minutiae.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/fingerprint/minutiae.cpp.o.d"
  "/root/repo/src/codecs/jpeg/huffman.cpp" "src/CMakeFiles/iotsim.dir/codecs/jpeg/huffman.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/jpeg/huffman.cpp.o.d"
  "/root/repo/src/codecs/jpeg/idct.cpp" "src/CMakeFiles/iotsim.dir/codecs/jpeg/idct.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/jpeg/idct.cpp.o.d"
  "/root/repo/src/codecs/jpeg/image.cpp" "src/CMakeFiles/iotsim.dir/codecs/jpeg/image.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/jpeg/image.cpp.o.d"
  "/root/repo/src/codecs/jpeg/jpeg_decoder.cpp" "src/CMakeFiles/iotsim.dir/codecs/jpeg/jpeg_decoder.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/jpeg/jpeg_decoder.cpp.o.d"
  "/root/repo/src/codecs/jpeg/jpeg_encoder.cpp" "src/CMakeFiles/iotsim.dir/codecs/jpeg/jpeg_encoder.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/jpeg/jpeg_encoder.cpp.o.d"
  "/root/repo/src/codecs/json/json_parser.cpp" "src/CMakeFiles/iotsim.dir/codecs/json/json_parser.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/json/json_parser.cpp.o.d"
  "/root/repo/src/codecs/json/json_value.cpp" "src/CMakeFiles/iotsim.dir/codecs/json/json_value.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/json/json_value.cpp.o.d"
  "/root/repo/src/codecs/json/json_writer.cpp" "src/CMakeFiles/iotsim.dir/codecs/json/json_writer.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/json/json_writer.cpp.o.d"
  "/root/repo/src/codecs/util/base64.cpp" "src/CMakeFiles/iotsim.dir/codecs/util/base64.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/util/base64.cpp.o.d"
  "/root/repo/src/codecs/util/checksum.cpp" "src/CMakeFiles/iotsim.dir/codecs/util/checksum.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/codecs/util/checksum.cpp.o.d"
  "/root/repo/src/core/app_executor.cpp" "src/CMakeFiles/iotsim.dir/core/app_executor.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/app_executor.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "src/CMakeFiles/iotsim.dir/core/comparison.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/comparison.cpp.o.d"
  "/root/repo/src/core/offload_planner.cpp" "src/CMakeFiles/iotsim.dir/core/offload_planner.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/offload_planner.cpp.o.d"
  "/root/repo/src/core/qos.cpp" "src/CMakeFiles/iotsim.dir/core/qos.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/qos.cpp.o.d"
  "/root/repo/src/core/result_json.cpp" "src/CMakeFiles/iotsim.dir/core/result_json.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/result_json.cpp.o.d"
  "/root/repo/src/core/scenario_runner.cpp" "src/CMakeFiles/iotsim.dir/core/scenario_runner.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/core/scenario_runner.cpp.o.d"
  "/root/repo/src/dsp/dtw.cpp" "src/CMakeFiles/iotsim.dir/dsp/dtw.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/dtw.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/iotsim.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/filters.cpp" "src/CMakeFiles/iotsim.dir/dsp/filters.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/filters.cpp.o.d"
  "/root/repo/src/dsp/mfcc.cpp" "src/CMakeFiles/iotsim.dir/dsp/mfcc.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/mfcc.cpp.o.d"
  "/root/repo/src/dsp/pan_tompkins.cpp" "src/CMakeFiles/iotsim.dir/dsp/pan_tompkins.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/pan_tompkins.cpp.o.d"
  "/root/repo/src/dsp/peak_detect.cpp" "src/CMakeFiles/iotsim.dir/dsp/peak_detect.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/peak_detect.cpp.o.d"
  "/root/repo/src/dsp/sta_lta.cpp" "src/CMakeFiles/iotsim.dir/dsp/sta_lta.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/dsp/sta_lta.cpp.o.d"
  "/root/repo/src/energy/battery.cpp" "src/CMakeFiles/iotsim.dir/energy/battery.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/battery.cpp.o.d"
  "/root/repo/src/energy/energy_accountant.cpp" "src/CMakeFiles/iotsim.dir/energy/energy_accountant.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/energy_accountant.cpp.o.d"
  "/root/repo/src/energy/energy_report.cpp" "src/CMakeFiles/iotsim.dir/energy/energy_report.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/energy_report.cpp.o.d"
  "/root/repo/src/energy/power_model.cpp" "src/CMakeFiles/iotsim.dir/energy/power_model.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/power_model.cpp.o.d"
  "/root/repo/src/energy/power_state_machine.cpp" "src/CMakeFiles/iotsim.dir/energy/power_state_machine.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/power_state_machine.cpp.o.d"
  "/root/repo/src/energy/routine.cpp" "src/CMakeFiles/iotsim.dir/energy/routine.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/energy/routine.cpp.o.d"
  "/root/repo/src/hw/boards.cpp" "src/CMakeFiles/iotsim.dir/hw/boards.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/boards.cpp.o.d"
  "/root/repo/src/hw/bus.cpp" "src/CMakeFiles/iotsim.dir/hw/bus.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/bus.cpp.o.d"
  "/root/repo/src/hw/cpu.cpp" "src/CMakeFiles/iotsim.dir/hw/cpu.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/cpu.cpp.o.d"
  "/root/repo/src/hw/interrupt_controller.cpp" "src/CMakeFiles/iotsim.dir/hw/interrupt_controller.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/interrupt_controller.cpp.o.d"
  "/root/repo/src/hw/iot_hub.cpp" "src/CMakeFiles/iotsim.dir/hw/iot_hub.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/iot_hub.cpp.o.d"
  "/root/repo/src/hw/mcu.cpp" "src/CMakeFiles/iotsim.dir/hw/mcu.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/mcu.cpp.o.d"
  "/root/repo/src/hw/nic.cpp" "src/CMakeFiles/iotsim.dir/hw/nic.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/nic.cpp.o.d"
  "/root/repo/src/hw/processor.cpp" "src/CMakeFiles/iotsim.dir/hw/processor.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/hw/processor.cpp.o.d"
  "/root/repo/src/sensors/sensor.cpp" "src/CMakeFiles/iotsim.dir/sensors/sensor.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sensors/sensor.cpp.o.d"
  "/root/repo/src/sensors/sensor_catalog.cpp" "src/CMakeFiles/iotsim.dir/sensors/sensor_catalog.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sensors/sensor_catalog.cpp.o.d"
  "/root/repo/src/sensors/signal_generators.cpp" "src/CMakeFiles/iotsim.dir/sensors/signal_generators.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sensors/signal_generators.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/iotsim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/join.cpp" "src/CMakeFiles/iotsim.dir/sim/join.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/join.cpp.o.d"
  "/root/repo/src/sim/process.cpp" "src/CMakeFiles/iotsim.dir/sim/process.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/process.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/iotsim.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/sim_time.cpp" "src/CMakeFiles/iotsim.dir/sim/sim_time.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/sim_time.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/iotsim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/trace/ascii_chart.cpp" "src/CMakeFiles/iotsim.dir/trace/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/ascii_chart.cpp.o.d"
  "/root/repo/src/trace/csv_writer.cpp" "src/CMakeFiles/iotsim.dir/trace/csv_writer.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/csv_writer.cpp.o.d"
  "/root/repo/src/trace/memory_profiler.cpp" "src/CMakeFiles/iotsim.dir/trace/memory_profiler.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/memory_profiler.cpp.o.d"
  "/root/repo/src/trace/mips_counter.cpp" "src/CMakeFiles/iotsim.dir/trace/mips_counter.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/mips_counter.cpp.o.d"
  "/root/repo/src/trace/power_trace.cpp" "src/CMakeFiles/iotsim.dir/trace/power_trace.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/power_trace.cpp.o.d"
  "/root/repo/src/trace/table_printer.cpp" "src/CMakeFiles/iotsim.dir/trace/table_printer.cpp.o" "gcc" "src/CMakeFiles/iotsim.dir/trace/table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
