# Empty dependencies file for fig01_idle_vs_baseline.
# This may be replaced when dependencies are built.
