file(REMOVE_RECURSE
  "CMakeFiles/fig01_idle_vs_baseline.dir/fig01_idle_vs_baseline.cpp.o"
  "CMakeFiles/fig01_idle_vs_baseline.dir/fig01_idle_vs_baseline.cpp.o.d"
  "fig01_idle_vs_baseline"
  "fig01_idle_vs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_idle_vs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
