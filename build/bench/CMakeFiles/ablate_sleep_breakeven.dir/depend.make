# Empty dependencies file for ablate_sleep_breakeven.
# This may be replaced when dependencies are built.
