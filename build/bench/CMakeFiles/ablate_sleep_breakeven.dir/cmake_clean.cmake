file(REMOVE_RECURSE
  "CMakeFiles/ablate_sleep_breakeven.dir/ablate_sleep_breakeven.cpp.o"
  "CMakeFiles/ablate_sleep_breakeven.dir/ablate_sleep_breakeven.cpp.o.d"
  "ablate_sleep_breakeven"
  "ablate_sleep_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sleep_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
