# Empty dependencies file for ablate_mcu_speed.
# This may be replaced when dependencies are built.
