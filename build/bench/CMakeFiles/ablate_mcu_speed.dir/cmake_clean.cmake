file(REMOVE_RECURSE
  "CMakeFiles/ablate_mcu_speed.dir/ablate_mcu_speed.cpp.o"
  "CMakeFiles/ablate_mcu_speed.dir/ablate_mcu_speed.cpp.o.d"
  "ablate_mcu_speed"
  "ablate_mcu_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_mcu_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
