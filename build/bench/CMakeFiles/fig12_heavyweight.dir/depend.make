# Empty dependencies file for fig12_heavyweight.
# This may be replaced when dependencies are built.
