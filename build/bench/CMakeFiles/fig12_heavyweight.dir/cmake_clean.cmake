file(REMOVE_RECURSE
  "CMakeFiles/fig12_heavyweight.dir/fig12_heavyweight.cpp.o"
  "CMakeFiles/fig12_heavyweight.dir/fig12_heavyweight.cpp.o.d"
  "fig12_heavyweight"
  "fig12_heavyweight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_heavyweight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
