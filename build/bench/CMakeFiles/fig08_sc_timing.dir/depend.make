# Empty dependencies file for fig08_sc_timing.
# This may be replaced when dependencies are built.
