file(REMOVE_RECURSE
  "CMakeFiles/fig08_sc_timing.dir/fig08_sc_timing.cpp.o"
  "CMakeFiles/fig08_sc_timing.dir/fig08_sc_timing.cpp.o.d"
  "fig08_sc_timing"
  "fig08_sc_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sc_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
