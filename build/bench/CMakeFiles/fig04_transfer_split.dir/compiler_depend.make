# Empty compiler generated dependencies file for fig04_transfer_split.
# This may be replaced when dependencies are built.
