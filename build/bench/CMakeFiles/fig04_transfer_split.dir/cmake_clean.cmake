file(REMOVE_RECURSE
  "CMakeFiles/fig04_transfer_split.dir/fig04_transfer_split.cpp.o"
  "CMakeFiles/fig04_transfer_split.dir/fig04_transfer_split.cpp.o.d"
  "fig04_transfer_split"
  "fig04_transfer_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_transfer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
