# Empty compiler generated dependencies file for fig03_beam_breakdown.
# This may be replaced when dependencies are built.
