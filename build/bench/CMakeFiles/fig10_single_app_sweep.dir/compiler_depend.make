# Empty compiler generated dependencies file for fig10_single_app_sweep.
# This may be replaced when dependencies are built.
