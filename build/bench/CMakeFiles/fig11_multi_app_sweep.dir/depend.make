# Empty dependencies file for fig11_multi_app_sweep.
# This may be replaced when dependencies are built.
