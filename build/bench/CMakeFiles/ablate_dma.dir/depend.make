# Empty dependencies file for ablate_dma.
# This may be replaced when dependencies are built.
