file(REMOVE_RECURSE
  "CMakeFiles/ablate_dma.dir/ablate_dma.cpp.o"
  "CMakeFiles/ablate_dma.dir/ablate_dma.cpp.o.d"
  "ablate_dma"
  "ablate_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
