# Empty dependencies file for fig05_power_states.
# This may be replaced when dependencies are built.
