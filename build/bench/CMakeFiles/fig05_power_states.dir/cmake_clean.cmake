file(REMOVE_RECURSE
  "CMakeFiles/fig05_power_states.dir/fig05_power_states.cpp.o"
  "CMakeFiles/fig05_power_states.dir/fig05_power_states.cpp.o.d"
  "fig05_power_states"
  "fig05_power_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_power_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
