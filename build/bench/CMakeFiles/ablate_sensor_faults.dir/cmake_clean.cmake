file(REMOVE_RECURSE
  "CMakeFiles/ablate_sensor_faults.dir/ablate_sensor_faults.cpp.o"
  "CMakeFiles/ablate_sensor_faults.dir/ablate_sensor_faults.cpp.o.d"
  "ablate_sensor_faults"
  "ablate_sensor_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sensor_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
