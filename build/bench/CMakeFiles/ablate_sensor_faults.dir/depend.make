# Empty dependencies file for ablate_sensor_faults.
# This may be replaced when dependencies are built.
