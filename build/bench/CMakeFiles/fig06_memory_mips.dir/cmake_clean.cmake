file(REMOVE_RECURSE
  "CMakeFiles/fig06_memory_mips.dir/fig06_memory_mips.cpp.o"
  "CMakeFiles/fig06_memory_mips.dir/fig06_memory_mips.cpp.o.d"
  "fig06_memory_mips"
  "fig06_memory_mips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_memory_mips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
