# Empty compiler generated dependencies file for fig06_memory_mips.
# This may be replaced when dependencies are built.
