# Empty dependencies file for ablate_concurrency.
# This may be replaced when dependencies are built.
