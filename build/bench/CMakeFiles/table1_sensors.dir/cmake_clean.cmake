file(REMOVE_RECURSE
  "CMakeFiles/table1_sensors.dir/table1_sensors.cpp.o"
  "CMakeFiles/table1_sensors.dir/table1_sensors.cpp.o.d"
  "table1_sensors"
  "table1_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
