# Empty dependencies file for table1_sensors.
# This may be replaced when dependencies are built.
