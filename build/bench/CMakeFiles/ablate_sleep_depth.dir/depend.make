# Empty dependencies file for ablate_sleep_depth.
# This may be replaced when dependencies are built.
