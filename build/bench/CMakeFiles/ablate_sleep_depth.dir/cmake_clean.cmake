file(REMOVE_RECURSE
  "CMakeFiles/ablate_sleep_depth.dir/ablate_sleep_depth.cpp.o"
  "CMakeFiles/ablate_sleep_depth.dir/ablate_sleep_depth.cpp.o.d"
  "ablate_sleep_depth"
  "ablate_sleep_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sleep_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
