# Empty dependencies file for fig09_sc_three_schemes.
# This may be replaced when dependencies are built.
