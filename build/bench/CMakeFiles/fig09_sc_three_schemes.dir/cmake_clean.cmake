file(REMOVE_RECURSE
  "CMakeFiles/fig09_sc_three_schemes.dir/fig09_sc_three_schemes.cpp.o"
  "CMakeFiles/fig09_sc_three_schemes.dir/fig09_sc_three_schemes.cpp.o.d"
  "fig09_sc_three_schemes"
  "fig09_sc_three_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sc_three_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
