file(REMOVE_RECURSE
  "CMakeFiles/fig07_sc_batching.dir/fig07_sc_batching.cpp.o"
  "CMakeFiles/fig07_sc_batching.dir/fig07_sc_batching.cpp.o.d"
  "fig07_sc_batching"
  "fig07_sc_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sc_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
