# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_time[1]_include.cmake")
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_process[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_join[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_codecs[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
