
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/test_bus.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_bus.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_bus.cpp.o.d"
  "/root/repo/tests/hw/test_interrupt_controller.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_interrupt_controller.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_interrupt_controller.cpp.o.d"
  "/root/repo/tests/hw/test_iot_hub.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_iot_hub.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_iot_hub.cpp.o.d"
  "/root/repo/tests/hw/test_nic.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_nic.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_nic.cpp.o.d"
  "/root/repo/tests/hw/test_processor.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_processor.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_processor.cpp.o.d"
  "/root/repo/tests/hw/test_processor_policies.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_processor_policies.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_processor_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
