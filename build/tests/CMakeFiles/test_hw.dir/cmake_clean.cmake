file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_bus.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_bus.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_interrupt_controller.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_interrupt_controller.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_iot_hub.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_iot_hub.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_nic.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_nic.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_processor.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_processor.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_processor_policies.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_processor_policies.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
