
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_memory_profiler.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_memory_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_memory_profiler.cpp.o.d"
  "/root/repo/tests/trace/test_mips_counter.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_mips_counter.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_mips_counter.cpp.o.d"
  "/root/repo/tests/trace/test_power_trace.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_power_trace.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_power_trace.cpp.o.d"
  "/root/repo/tests/trace/test_reporters.cpp" "tests/CMakeFiles/test_trace.dir/trace/test_reporters.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/test_reporters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
