file(REMOVE_RECURSE
  "CMakeFiles/test_codecs.dir/codecs/test_coap.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_coap.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_coap_client.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_coap_client.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_coap_server.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_coap_server.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_fingerprint.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_fingerprint.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_jpeg.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_jpeg.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_json.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_json.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_robustness.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_robustness.cpp.o.d"
  "CMakeFiles/test_codecs.dir/codecs/test_util.cpp.o"
  "CMakeFiles/test_codecs.dir/codecs/test_util.cpp.o.d"
  "test_codecs"
  "test_codecs.pdb"
  "test_codecs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
