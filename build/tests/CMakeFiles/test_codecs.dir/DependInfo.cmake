
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codecs/test_coap.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap.cpp.o.d"
  "/root/repo/tests/codecs/test_coap_client.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap_client.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap_client.cpp.o.d"
  "/root/repo/tests/codecs/test_coap_server.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap_server.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_coap_server.cpp.o.d"
  "/root/repo/tests/codecs/test_fingerprint.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_fingerprint.cpp.o.d"
  "/root/repo/tests/codecs/test_jpeg.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_jpeg.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_jpeg.cpp.o.d"
  "/root/repo/tests/codecs/test_json.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_json.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_json.cpp.o.d"
  "/root/repo/tests/codecs/test_robustness.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_robustness.cpp.o.d"
  "/root/repo/tests/codecs/test_util.cpp" "tests/CMakeFiles/test_codecs.dir/codecs/test_util.cpp.o" "gcc" "tests/CMakeFiles/test_codecs.dir/codecs/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
