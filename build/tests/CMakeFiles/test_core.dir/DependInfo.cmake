
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_comparison.cpp" "tests/CMakeFiles/test_core.dir/core/test_comparison.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_comparison.cpp.o.d"
  "/root/repo/tests/core/test_extensions.cpp" "tests/CMakeFiles/test_core.dir/core/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_extensions.cpp.o.d"
  "/root/repo/tests/core/test_fault_injection.cpp" "tests/CMakeFiles/test_core.dir/core/test_fault_injection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fault_injection.cpp.o.d"
  "/root/repo/tests/core/test_offload_planner.cpp" "tests/CMakeFiles/test_core.dir/core/test_offload_planner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_offload_planner.cpp.o.d"
  "/root/repo/tests/core/test_paper_reproduction.cpp" "tests/CMakeFiles/test_core.dir/core/test_paper_reproduction.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_paper_reproduction.cpp.o.d"
  "/root/repo/tests/core/test_qos.cpp" "tests/CMakeFiles/test_core.dir/core/test_qos.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_qos.cpp.o.d"
  "/root/repo/tests/core/test_result_json.cpp" "tests/CMakeFiles/test_core.dir/core/test_result_json.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_result_json.cpp.o.d"
  "/root/repo/tests/core/test_scenario_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_scenario_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scenario_properties.cpp.o.d"
  "/root/repo/tests/core/test_scenario_schemes.cpp" "tests/CMakeFiles/test_core.dir/core/test_scenario_schemes.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scenario_schemes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
