file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_comparison.cpp.o"
  "CMakeFiles/test_core.dir/core/test_comparison.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_extensions.cpp.o"
  "CMakeFiles/test_core.dir/core/test_extensions.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fault_injection.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fault_injection.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_offload_planner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_offload_planner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_paper_reproduction.cpp.o"
  "CMakeFiles/test_core.dir/core/test_paper_reproduction.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_qos.cpp.o"
  "CMakeFiles/test_core.dir/core/test_qos.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_result_json.cpp.o"
  "CMakeFiles/test_core.dir/core/test_result_json.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scenario_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scenario_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scenario_schemes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scenario_schemes.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
