file(REMOVE_RECURSE
  "CMakeFiles/test_sensors.dir/sensors/test_sensor_catalog.cpp.o"
  "CMakeFiles/test_sensors.dir/sensors/test_sensor_catalog.cpp.o.d"
  "CMakeFiles/test_sensors.dir/sensors/test_signal_generators.cpp.o"
  "CMakeFiles/test_sensors.dir/sensors/test_signal_generators.cpp.o.d"
  "test_sensors"
  "test_sensors.pdb"
  "test_sensors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
