
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/energy/test_battery.cpp" "tests/CMakeFiles/test_energy.dir/energy/test_battery.cpp.o" "gcc" "tests/CMakeFiles/test_energy.dir/energy/test_battery.cpp.o.d"
  "/root/repo/tests/energy/test_energy_accountant.cpp" "tests/CMakeFiles/test_energy.dir/energy/test_energy_accountant.cpp.o" "gcc" "tests/CMakeFiles/test_energy.dir/energy/test_energy_accountant.cpp.o.d"
  "/root/repo/tests/energy/test_energy_report.cpp" "tests/CMakeFiles/test_energy.dir/energy/test_energy_report.cpp.o" "gcc" "tests/CMakeFiles/test_energy.dir/energy/test_energy_report.cpp.o.d"
  "/root/repo/tests/energy/test_power_model.cpp" "tests/CMakeFiles/test_energy.dir/energy/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/test_energy.dir/energy/test_power_model.cpp.o.d"
  "/root/repo/tests/energy/test_power_state_machine.cpp" "tests/CMakeFiles/test_energy.dir/energy/test_power_state_machine.cpp.o" "gcc" "tests/CMakeFiles/test_energy.dir/energy/test_power_state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
