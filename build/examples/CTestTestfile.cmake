# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smart_home "/root/repo/build/examples/smart_home" "2")
set_tests_properties(example_smart_home PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_health_monitor "/root/repo/build/examples/health_monitor" "4")
set_tests_properties(example_health_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_explorer "/root/repo/build/examples/scheme_explorer" "bcom" "A2,A4" "2")
set_tests_properties(example_scheme_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheme_explorer_json "/root/repo/build/examples/scheme_explorer" "com" "A2" "2" "--json")
set_tests_properties(example_scheme_explorer_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
