file(REMOVE_RECURSE
  "CMakeFiles/health_monitor.dir/health_monitor.cpp.o"
  "CMakeFiles/health_monitor.dir/health_monitor.cpp.o.d"
  "health_monitor"
  "health_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
